// Adaptive statistical campaign planner: Wilson-bounded trial allocation.
//
// The paper sizes every cell with a fixed Leveugle (DATE'09) sample count
// (1068 trials for a ±3% margin at 95% confidence, worst-case p = 0.5). Most
// cells are nowhere near the worst case: an SDC rate of 5% pins its Wilson
// interval below ±3% after a few hundred trials. The planner exploits that:
// trials are allocated in deterministic ROUNDS — every unconverged cell gets
// a batch (geometric schedule bounded by a Wilson-derived prediction of how
// many trials the cell still needs), the round's OutcomeCounts are ingested,
// and cells whose per-class Wilson half-widths (crash / SOC / benign /
// detected) are all ≤ the target retire. Cells that refuse to converge
// retire at the `max` cap.
//
// Determinism contract: the batch of round r is a pure function of the
// cumulative counts after rounds 0..r-1, which are themselves pure in
// (campaign seed, cell) — trial (target, seed) pairs derive from the
// absolute trial index exactly as flat campaigns derive them (engine.h), and
// round r covers indices [Σ batch_0..r-1, +batch_r). So a planned campaign
// resumes from its CheckpointStore mid-campaign, and sharded or distributed
// runs (the coordinator grants per-(cell, round) leases and re-plans on
// ingest) produce byte-identical reports to a single-process planned run.
// See DESIGN.md "Statistical planner".
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "campaign/engine.h"
#include "campaign/persist.h"
#include "campaign/runner.h"

namespace refine::campaign {

/// A plan spec: `--plan ci=0.03,conf=0.95,min=64,max=8192`. Parsed like
/// tool specs (campaign/spec.h): strict key=value pairs in any order, each
/// key at most once, with defaults for the missing. canonical() always
/// spells out all four keys in fixed order; the canonical spelling is bound
/// into checkpoint meta so resumes under a different plan fail loudly.
struct PlanSpec {
  double ci = 0.03;          // target Wilson half-width per outcome class
  double confidence = 0.95;  // 0.90, 0.95 or 0.99 (the zCritical table)
  std::uint64_t minTrials = 64;    // round-0 batch (and batch floor)
  std::uint64_t maxTrials = 8192;  // per-cell cap; unconverged cells retire

  std::string canonical() const;
  friend bool operator==(const PlanSpec&, const PlanSpec&) noexcept = default;
};

/// Parses a plan spec. Throws CheckError on unknown or duplicate keys,
/// malformed values, ci outside (0, 1), a confidence outside the zCritical
/// table, or min/max that are zero or inverted.
PlanSpec parsePlanSpec(std::string_view text);

/// True when every outcome class's Wilson half-width at `spec.confidence`
/// is ≤ spec.ci. Zero trials never converge (the Wilson interval over no
/// data is the whole [0, 1]).
bool planConverged(const PlanSpec& spec, const OutcomeCounts& cumulative);

/// True when the cell is done drawing trials: converged, or at/past the
/// `max` cap. Monotone in rounds by construction — a retired cell is never
/// granted another batch, so no later evidence can un-retire it.
bool planRetired(const PlanSpec& spec, const OutcomeCounts& cumulative);

/// Batch size for round `round` of a cell whose rounds 0..round-1 summed to
/// `cumulative`. Pure: (spec, round, cumulative) fully determine the batch,
/// and cumulative is itself pure in (campaign seed, cell) — the planner's
/// determinism hinges on this function. Returns 0 iff the cell is retired.
///
/// Schedule: round 0 runs `min`; afterwards the batch doubles geometrically
/// (min·2^round) but is clamped by a conservative Wilson-based prediction
/// of the trials still needed, so cells whose rates are already resolving
/// don't overshoot their convergence point — the clamp is what beats the
/// flat 1068-trial budget by >3× on typical matrices. Never exceeds
/// max − cumulative.total().
std::uint64_t planNextBatch(const PlanSpec& spec, std::uint64_t round,
                            const OutcomeCounts& cumulative);

/// Conservative prediction of the smallest TOTAL trial count at which every
/// class's Wilson half-width is ≤ spec.ci, assuming each observed rate may
/// drift within its own current interval toward 0.5 (the variance-maximal
/// direction). With no data it is the p = 0.5 worst case. Exposed for tests.
std::uint64_t planPredictedTrials(const PlanSpec& spec,
                                  const OutcomeCounts& cumulative);

/// Replayed progress of one cell: its per-round records folded back into
/// the planner state, validating the store on the way.
struct PlanProgress {
  std::uint64_t roundsDone = 0;
  OutcomeCounts counts;  // cumulative over rounds 0..roundsDone-1
  // Deterministic per-cell fields (identical across rounds; validated).
  std::uint64_t dynamicTargets = 0;
  std::uint64_t profileInstrs = 0;
  std::uint64_t binarySize = 0;
  double seconds = 0.0;  // summed wall time (not part of any byte contract)
};

/// Folds all persisted rounds of ONE cell (any order) into PlanProgress.
/// Throws CheckError unless the records are exactly a prefix of what the
/// plan would have run: round-tagged, rounds contiguous from 0 with no
/// duplicates, each round's trial count equal to planNextBatch() over the
/// rounds before it, and the deterministic fields agreeing across rounds.
/// `what` labels errors (e.g. "checkpoint foo.ckpt cell EP x REFINE").
PlanProgress replayPlanRounds(const PlanSpec& spec,
                              const std::vector<const CampaignResult*>& rounds,
                              const std::string& what);

/// One planned cell's final state.
struct PlannedCell {
  /// Aggregate over all rounds: counts and wall time summed, deterministic
  /// fields carried through, planRound unset (it tags per-round records,
  /// not aggregates).
  CampaignResult total;
  std::uint64_t rounds = 0;
  /// False when the cell retired at the `max` cap still unconverged.
  bool converged = false;
};

/// Re-aggregates per-round store records (e.g. a mergeCheckpoints() result)
/// into per-cell PlannedCells, validating each cell via replayPlanRounds().
/// The distributed and merge paths build their reports from this, which is
/// why they are byte-identical to a local planned run.
std::vector<PlannedCell> foldPlannedRecords(
    const std::vector<CampaignResult>& records, const PlanSpec& spec);

/// Planned-campaign report: one row per cell sorted by (app, tool), with
/// Wilson bounds on the SDC (SOC) rate — the paper's headline metric — at
/// the plan's confidence.
///
///   app,tool,trials_used,crash,soc,benign,detected,ci_low,ci_high,rounds,
///   converged,dynamic_targets,profile_instrs,binary_size
std::string plannedCountsCsv(const std::vector<PlannedCell>& cells,
                             const PlanSpec& spec);

/// How runPlannedMatrix slices and persists a job list; mirrors
/// MatrixOptions (engine.h).
struct PlannedMatrixOptions {
  ShardSpec shard;
  /// When set: the store is bound to this campaign's meta (trials = the
  /// plan's max cap, plan = the canonical spec), completed rounds are
  /// replayed instead of re-run, and every freshly drained round is
  /// appended. Replayed rounds do not re-fire the callback.
  CheckpointStore* checkpoint = nullptr;
};

/// Runs a planned campaign over this shard's slice of `jobs`: builds each
/// unretired cell once, then loops rounds — every unretired cell gets its
/// planNextBatch() trial range via CampaignEngine::runBatches — until all
/// cells retire. Returns this shard's cells in job order. The engine's
/// config.trials is ignored (the plan decides trial counts); recordPerTrial
/// is rejected. `onRoundDone` fires per freshly drained (cell, round)
/// record, from a worker thread.
std::vector<PlannedCell> runPlannedMatrix(
    CampaignEngine& engine, const std::vector<MatrixJob>& jobs,
    const PlanSpec& spec, const PlannedMatrixOptions& options = {},
    const CampaignEngine::ResultCallback& onRoundDone = {});

}  // namespace refine::campaign
