// Declarative fault-model specs: the registry's spec-resolution path.
//
// A tool spec names a fault population as text instead of a hand-written
// factory class:
//
//   BASE[:key=value,...]      e.g.  REFINE:instrs=fp,bits=2,funcs=kernel*
//
//   BASE    one of the paper tools (LLFI, REFINE, PINFI)
//   instrs  stack | arithm | mem | fp | all          (default all)
//   bits    1..64 bits flipped per fault             (default 1)
//   mode    adjacent | independent bit placement     (default adjacent;
//                                                     meaningless at bits=1)
//   funcs   '+'-separated function-name globs        (default *)
//   protect none | dwc | tmr | cfcss                 (default none;
//                                                     opt/protect.h scheme
//                                                     applied to the target)
//
// parseToolSpec() turns the text into a ToolSpec; canonical() renders it
// back in a fixed key order with defaults omitted, so every spelling of the
// same fault model resolves to ONE registry key — the property that keeps
// matrix cells, checkpoint records and shard merges keyed consistently.
// resolveToolSpec() is the CLI entry point: registered names pass through,
// anything else must parse as a spec and gets a SpecFactory registered
// under its canonical spelling. Named scenarios (scenarios.cpp) are the
// same SpecFactory registered under an alias.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "campaign/registry.h"

namespace refine::campaign {

/// A parsed fault-model spec: a base injector plus an FiConfig overlay.
struct ToolSpec {
  std::string base;  // paper-tool registry key (LLFI, REFINE, PINFI)
  fi::InstrSel instrs = fi::InstrSel::All;
  fi::BitFlip flip;
  std::vector<std::string> funcs = {"*"};  // sorted + deduped by the parser
  opt::ProtectScheme protect = opt::ProtectScheme::None;

  /// Canonical spelling: base, then instrs/bits/mode/funcs/protect in that
  /// order, defaults omitted. A spec that is all defaults canonicalizes to
  /// the bare base name. Contains no whitespace, ever (checkpoint meta
  /// lines are space-framed).
  std::string canonical() const;

  /// Overlays this spec onto `config`: enables injection and replaces the
  /// population fields (instrs, flip, funcPatterns). The spec fully
  /// determines the fault model; unrelated fields pass through.
  fi::FiConfig apply(fi::FiConfig config) const;

  friend bool operator==(const ToolSpec&, const ToolSpec&) noexcept = default;
};

/// Parses `text` as BASE[:key=value,...]. Throws CheckError on an unknown
/// base or key, an out-of-range or duplicate value, or malformed syntax.
/// Does not touch the registry (safe during static initialization).
ToolSpec parseToolSpec(std::string_view text);

/// Factory composed from a spec: create() resolves the base tool in the
/// registry (lazily, so registration order never matters) and hands it the
/// overlaid config. Registered under the canonical spelling by
/// resolveToolSpec(), or under an alias by named-scenario registrations.
class SpecFactory final : public InjectorFactory {
 public:
  SpecFactory(std::string name, ToolSpec spec)
      : name_(std::move(name)), spec_(std::move(spec)) {}

  std::string_view name() const override { return name_; }

  std::unique_ptr<ToolInstance> create(
      std::string_view source, const fi::FiConfig& config) const override;

  const ToolSpec& spec() const noexcept { return spec_; }

 private:
  std::string name_;
  ToolSpec spec_;
};

/// Resolves a --tool argument to a registry key: a registered injector name
/// is returned as-is; otherwise the text must parse as a spec, a
/// SpecFactory is registered under the canonical spelling (once, however
/// many spellings resolve to it) and the canonical key is returned. Throws
/// CheckError when the text is neither.
std::string resolveToolSpec(std::string_view text);

}  // namespace refine::campaign
