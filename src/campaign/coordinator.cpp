#include "campaign/coordinator.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <poll.h>
#include <utility>

#include "campaign/report.h"
#include "support/check.h"
#include "support/socket.h"
#include "support/strings.h"

namespace refine::campaign {

namespace {

double steadySeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Escapes `s` for use inside a JSON string literal. Tool keys are the only
/// free-form text statusJson embeds; meta-binding rejects framing characters
/// but not quotes or backslashes.
std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strf("\\u%04x", static_cast<unsigned>(c));
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Coordinator core (I/O-free)
// ---------------------------------------------------------------------------

Coordinator::Coordinator(CoordinatorConfig config, CheckpointStore& store,
                         double now)
    : config_(std::move(config)), store_(store), startTime_(now) {
  RF_CHECK(!config_.apps.empty(), "a campaign needs at least one app");
  RF_CHECK(!config_.tools.empty(), "a campaign needs at least one tool");
  RF_CHECK(config_.leaseCount >= 1, "lease count must be at least 1");
  RF_CHECK(config_.trials >= 1, "trials must be at least 1");
  RF_CHECK(config_.heartbeatTimeout > 0, "heartbeat timeout must be > 0");

  // Canonical cell order: apps outer, tools inner — identical to the job
  // list every worker reconstructs from a grant, so lease L's shard slice
  // means the same cells on every host.
  for (const auto& app : config_.apps) {
    for (const auto& tool : config_.tools) {
      cells_.emplace_back(app, tool);
    }
  }

  // Bind the store to this campaign before trusting (or ingesting) any
  // record — the same derivation CampaignEngine::runMatrix uses, so the
  // coordinator store merges interchangeably with manual shard stores.
  for (const auto& tool : config_.tools) {
    RF_CHECK(tool.find_first_of(" \t\n\r;") == std::string::npos,
             "tool key '" + tool + "' cannot be bound into checkpoint meta");
  }
  store_.bindCampaign({config_.baseSeed, config_.trials,
                       config_.timeoutFactor, join(config_.tools, ";")});
  for (const auto& record : store_.records()) {
    RF_CHECK(record.counts.total() == config_.trials,
             "checkpoint " + store_.path() + " holds " +
                 std::to_string(record.counts.total()) +
                 " trials for cell " + record.app + " x " + record.tool +
                 " but this campaign runs " + std::to_string(config_.trials));
  }

  leases_.resize(config_.leaseCount);
  for (std::uint32_t l = 0; l < config_.leaseCount; ++l) {
    Lease& lease = leases_[l];
    lease.shard = ShardSpec{l, config_.leaseCount};
    for (std::size_t i = 0; i < cells_.size(); ++i) {
      if (lease.shard.contains(i)) lease.cells.push_back(i);
    }
    // A restarted coordinator resumes: leases already fully on disk (and
    // leases with no cells at all, when leaseCount > cells) start out Done.
    if (leaseComplete(lease)) lease.state = LeaseState::Done;
  }
}

bool Coordinator::leaseComplete(const Lease& lease) const {
  return std::all_of(lease.cells.begin(), lease.cells.end(),
                     [&](std::size_t cell) {
                       return store_.contains(cells_[cell].first,
                                              cells_[cell].second);
                     });
}

std::uint64_t Coordinator::addWorker() {
  ++workersConnected_;
  return nextWorker_++;
}

bool Coordinator::reissue(Lease& lease) {
  ++lease.epoch;  // fences every in-flight message of the old holder
  lease.worker = 0;
  if (leaseComplete(lease)) {
    // The holder died after streaming every record but before LeaseDone:
    // nothing is left to compute, so finish the lease instead of handing
    // the shard to another worker just to have every record deduplicated.
    lease.state = LeaseState::Done;
    return false;
  }
  lease.state = LeaseState::Unassigned;
  ++leaseReissues_;
  return true;
}

std::size_t Coordinator::removeWorker(std::uint64_t worker, double) {
  if (workersConnected_ > 0) --workersConnected_;
  std::size_t reclaimed = 0;
  for (Lease& lease : leases_) {
    if (lease.state == LeaseState::Active && lease.worker == worker) {
      if (reissue(lease)) ++reclaimed;
    }
  }
  return reclaimed;
}

Coordinator::RequestReply Coordinator::onRequest(std::uint64_t worker,
                                                 double now) {
  if (complete()) return {RequestKind::Complete, {}};
  for (std::size_t l = 0; l < leases_.size(); ++l) {
    Lease& lease = leases_[l];
    if (lease.state != LeaseState::Unassigned) continue;
    lease.state = LeaseState::Active;
    lease.worker = worker;
    lease.lastTraffic = now;

    LeaseGrant grant;
    grant.leaseId = l;
    grant.epoch = lease.epoch;
    grant.shard = lease.shard;
    grant.baseSeed = config_.baseSeed;
    grant.trials = config_.trials;
    grant.timeoutFactor = config_.timeoutFactor;
    grant.heartbeatTimeout = config_.heartbeatTimeout;
    grant.apps = config_.apps;
    grant.tools = config_.tools;
    return {RequestKind::Grant, std::move(grant)};
  }
  return {RequestKind::Wait, {}};
}

Coordinator::Lease* Coordinator::fence(std::uint64_t worker,
                                       const LeaseRef& ref) {
  if (ref.leaseId >= leases_.size()) return nullptr;
  Lease& lease = leases_[ref.leaseId];
  if (lease.state != LeaseState::Active || lease.worker != worker ||
      lease.epoch != ref.epoch) {
    return nullptr;
  }
  return &lease;
}

Coordinator::Ingest Coordinator::onRecord(std::uint64_t worker,
                                          std::string_view payload,
                                          double now) {
  const auto decoded = decodeRecord(payload);
  if (!decoded) {
    ++corruptRecords_;
    return Ingest::Corrupt;
  }
  const auto record = CheckpointStore::decode(decoded->line);
  if (!record) {
    ++corruptRecords_;
    return Ingest::Corrupt;
  }
  Lease* lease = fence(worker, decoded->ref);
  if (lease == nullptr) {
    // A zombie holder of a re-issued lease: its records are (by the
    // determinism contract) identical to the new holder's, but accepting
    // them would launder unverifiable traffic — drop and count instead.
    ++staleRecords_;
    return Ingest::Stale;
  }
  lease->lastTraffic = now;

  RF_CHECK(record->counts.total() == config_.trials,
           "worker streamed " + std::to_string(record->counts.total()) +
               " trials for cell " + record->app + " x " + record->tool +
               " but this campaign runs " + std::to_string(config_.trials));

  if (const CampaignResult* existing =
          store_.find(record->app, record->tool)) {
    // Same dedup rule as mergeCheckpoints: duplicates must agree on every
    // deterministic field; wall time is measurement, not contract.
    RF_CHECK(existing->counts == record->counts &&
                 existing->dynamicTargets == record->dynamicTargets &&
                 existing->profileInstrs == record->profileInstrs &&
                 existing->binarySize == record->binarySize,
             "conflicting duplicate for cell " + record->app + " x " +
                 record->tool +
                 " (a worker disagrees with the stored deterministic "
                 "fields — determinism contract broken)");
    return Ingest::Duplicate;
  }
  store_.append(*record);
  trialsIngested_ += record->counts.total();
  return Ingest::Accepted;
}

bool Coordinator::onHeartbeat(std::uint64_t worker, std::string_view payload,
                              double now) {
  const auto ref = decodeLeaseRef(payload);
  if (!ref) return false;
  Lease* lease = fence(worker, *ref);
  if (lease == nullptr) return false;
  lease->lastTraffic = now;
  return true;
}

Coordinator::DoneResult Coordinator::onLeaseDone(std::uint64_t worker,
                                                 std::string_view payload,
                                                 double) {
  const auto ref = decodeLeaseRef(payload);
  if (!ref) return DoneResult::Stale;
  Lease* lease = fence(worker, *ref);
  if (lease == nullptr) return DoneResult::Stale;
  if (!leaseComplete(*lease)) {
    // Records precede LeaseDone in the protocol; a hand-back with cells
    // missing means frames were lost or the worker misbehaved. Re-issue
    // instead of trusting it.
    reissue(*lease);
    return DoneResult::Incomplete;
  }
  lease->state = LeaseState::Done;
  lease->worker = 0;
  return DoneResult::Ok;
}

std::vector<std::uint64_t> Coordinator::checkExpiry(double now) {
  std::vector<std::uint64_t> reissued;
  for (std::size_t l = 0; l < leases_.size(); ++l) {
    Lease& lease = leases_[l];
    if (lease.state == LeaseState::Active &&
        now - lease.lastTraffic > config_.heartbeatTimeout) {
      if (reissue(lease)) reissued.push_back(l);
    }
  }
  return reissued;
}

bool Coordinator::complete() const noexcept {
  return std::all_of(leases_.begin(), leases_.end(), [](const Lease& lease) {
    return lease.state == LeaseState::Done;
  });
}

std::size_t Coordinator::cellsDone() const noexcept {
  return store_.records().size();
}

std::string Coordinator::statusJson(double now) const {
  std::size_t unassigned = 0, active = 0, done = 0;
  for (const Lease& lease : leases_) {
    switch (lease.state) {
      case LeaseState::Unassigned: ++unassigned; break;
      case LeaseState::Active: ++active; break;
      case LeaseState::Done: ++done; break;
    }
  }

  // Per-tool outcome aggregates over everything ingested so far (including
  // cells resumed from a pre-existing store: they are campaign progress).
  std::map<std::string, OutcomeCounts> perTool;
  std::uint64_t trialsDone = 0;
  for (const auto& record : store_.records()) {
    perTool[record.tool] += record.counts;
    trialsDone += record.counts.total();
  }

  const double elapsed = std::max(now - startTime_, 0.0);
  const double trialsPerSec =
      elapsed > 0 ? static_cast<double>(trialsIngested_) / elapsed : 0.0;

  std::string perToolJson;
  for (const auto& tool : config_.tools) {
    const OutcomeCounts counts = perTool.count(tool) ? perTool.at(tool)
                                                     : OutcomeCounts{};
    if (!perToolJson.empty()) perToolJson += ',';
    perToolJson += strf("\"%s\":{\"crash\":%llu,\"soc\":%llu,\"benign\":%llu}",
                        jsonEscape(tool).c_str(),
                        static_cast<unsigned long long>(counts.crash),
                        static_cast<unsigned long long>(counts.soc),
                        static_cast<unsigned long long>(counts.benign));
  }

  return strf(
      "{\"complete\":%s,\"cells_total\":%zu,\"cells_done\":%zu,"
      "\"trials_total\":%llu,\"trials_done\":%llu,\"trials_per_sec\":%s,"
      "\"elapsed_sec\":%s,\"workers\":%zu,\"leases_total\":%zu,"
      "\"leases_unassigned\":%zu,\"leases_active\":%zu,\"leases_done\":%zu,"
      "\"lease_reissues\":%llu,\"stale_records\":%llu,"
      "\"corrupt_records\":%llu,\"per_tool\":{%s}}",
      complete() ? "true" : "false", cells_.size(), cellsDone(),
      static_cast<unsigned long long>(config_.trials * cells_.size()),
      static_cast<unsigned long long>(trialsDone),
      formatDouble(trialsPerSec).c_str(), formatDouble(elapsed).c_str(),
      workersConnected_, leases_.size(), unassigned, active, done,
      static_cast<unsigned long long>(leaseReissues_),
      static_cast<unsigned long long>(staleRecords_),
      static_cast<unsigned long long>(corruptRecords_), perToolJson.c_str());
}

// ---------------------------------------------------------------------------
// Serving loop
// ---------------------------------------------------------------------------

namespace {

/// One accepted connection. A connection becomes a *worker* after a valid
/// Hello; status clients never greet and only ever ask for status.
struct Connection {
  UniqueFd fd;
  std::optional<std::uint64_t> worker;
};

void diag(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void diag(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::fputs("[refine-campaign] ", stderr);
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
  va_end(args);
}

}  // namespace

int serveCampaign(const ServeOptions& options) {
  ListenSocket listener = tcpListen(options.port);
  CheckpointStore store(options.checkpointPath);
  if (!store.records().empty() || store.droppedRecords() > 0) {
    diag("resuming from %s: %zu completed cell(s), %zu torn record(s) "
         "dropped",
         store.path().c_str(), store.records().size(),
         store.droppedRecords());
  }
  Coordinator core(options.config, store, steadySeconds());

  diag("serving on port %u: %zu cells, %u leases, %llu trials/cell, "
       "heartbeat timeout %.1fs, checkpoint %s",
       listener.port, core.cellsTotal(), options.config.leaseCount,
       static_cast<unsigned long long>(options.config.trials),
       options.config.heartbeatTimeout, options.checkpointPath.c_str());
  if (options.onListening) options.onListening(listener.port);

  std::vector<Connection> connections;
  bool reportWritten = false;
  double exitDeadline = 0.0;

  auto dropConnection = [&](std::size_t index, double now,
                            const char* why) {
    Connection& conn = connections[index];
    if (conn.worker) {
      const std::size_t reclaimed = core.removeWorker(*conn.worker, now);
      diag("worker %llu gone (%s)%s",
           static_cast<unsigned long long>(*conn.worker), why,
           reclaimed > 0 ? strf(", re-issuing %zu lease(s)", reclaimed)
                               .c_str()
                         : "");
    }
    connections.erase(connections.begin() + static_cast<std::ptrdiff_t>(index));
  };

  // Replies can hit EPIPE/ECONNRESET when the peer died between its request
  // and our answer; the coordinator must outlive any client, so a failed
  // write reclaims that one connection (re-issuing its leases) instead of
  // propagating out of the serve loop. Returns false when the connection
  // was dropped — `connections[index]` is invalid afterwards.
  auto trySend = [&](std::size_t index, double now, MsgType type,
                     std::string_view payload) -> bool {
    try {
      writeFrame(connections[index].fd.get(), type, payload);
      return true;
    } catch (const CheckError& e) {
      diag("dropping connection: %s", e.what());
      dropConnection(index, now, "write failed");
      return false;
    }
  };

  while (true) {
    std::vector<pollfd> fds;
    fds.push_back({listener.fd.get(), POLLIN, 0});
    for (const Connection& conn : connections) {
      fds.push_back({conn.fd.get(), POLLIN, 0});
    }
    // The timeout bounds how late a heartbeat expiry can be noticed.
    const int rc = ::poll(fds.data(), fds.size(), 200);
    RF_CHECK(rc >= 0 || errno == EINTR, "poll() failed");
    double now = steadySeconds();

    for (const std::uint64_t leaseId : core.checkExpiry(now)) {
      diag("lease %llu missed its heartbeat deadline, re-issuing",
           static_cast<unsigned long long>(leaseId));
    }

    // Walk backwards so dropping a connection cannot shift unvisited ones.
    // New connections are accepted only AFTER this loop: fds[i + 1] maps to
    // connections[i] exactly because `connections` has not grown since the
    // poll() that filled fds.
    for (std::size_t i = connections.size(); i-- > 0;) {
      if (!(fds[i + 1].revents & (POLLIN | POLLHUP | POLLERR))) continue;
      Connection& conn = connections[i];
      std::optional<Frame> frame;
      try {
        frame = readFrame(conn.fd.get());
      } catch (const CheckError& e) {
        // Torn mid-frame (a worker SIGKILLed mid-write) or garbage bytes:
        // either way the stream is unusable — reclaim and move on.
        now = steadySeconds();
        diag("dropping connection: %s", e.what());
        dropConnection(i, now, "bad stream");
        continue;
      }
      now = steadySeconds();
      if (!frame) {
        dropConnection(i, now, "disconnected");
        continue;
      }

      switch (frame->type) {
        case MsgType::Hello:
          if (frame->payload != kNetHello) {
            if (trySend(i, now, MsgType::Reject,
                        strf("protocol mismatch: coordinator speaks '%.*s'",
                             static_cast<int>(kNetHello.size()),
                             kNetHello.data()))) {
              dropConnection(i, now, "version mismatch");
            }
            break;
          }
          conn.worker = core.addWorker();
          diag("worker %llu connected",
               static_cast<unsigned long long>(*conn.worker));
          break;

        case MsgType::Request: {
          if (!conn.worker) {
            if (trySend(i, now, MsgType::Reject, "Hello first")) {
              dropConnection(i, now, "no hello");
            }
            break;
          }
          const auto reply = core.onRequest(*conn.worker, now);
          switch (reply.kind) {
            case Coordinator::RequestKind::Grant:
              diag("lease %llu (epoch %llu, shard %u/%u) -> worker %llu",
                   static_cast<unsigned long long>(reply.grant.leaseId),
                   static_cast<unsigned long long>(reply.grant.epoch),
                   reply.grant.shard.index, reply.grant.shard.count,
                   static_cast<unsigned long long>(*conn.worker));
              // A failed Grant write reclaims the just-activated lease via
              // dropConnection -> removeWorker, epoch bumped as usual.
              trySend(i, now, MsgType::Grant, encodeGrant(reply.grant));
              break;
            case Coordinator::RequestKind::Wait:
              trySend(i, now, MsgType::Wait, "250");
              break;
            case Coordinator::RequestKind::Complete:
              trySend(i, now, MsgType::Complete, "");
              break;
          }
          break;
        }

        case MsgType::Record: {
          if (!conn.worker) break;
          const auto result = core.onRecord(*conn.worker, frame->payload,
                                            now);
          if (result == Coordinator::Ingest::Accepted) {
            diag("ingested cell %zu/%zu from worker %llu", core.cellsDone(),
                 core.cellsTotal(),
                 static_cast<unsigned long long>(*conn.worker));
          } else if (result == Coordinator::Ingest::Stale) {
            diag("fenced stale record from worker %llu (lease re-issued "
                 "under a newer epoch)",
                 static_cast<unsigned long long>(*conn.worker));
          } else if (result == Coordinator::Ingest::Corrupt) {
            diag("dropped corrupt record frame from worker %llu",
                 static_cast<unsigned long long>(*conn.worker));
          }
          break;
        }

        case MsgType::Heartbeat:
          if (conn.worker) core.onHeartbeat(*conn.worker, frame->payload, now);
          break;

        case MsgType::LeaseDone: {
          if (!conn.worker) break;
          const auto result =
              core.onLeaseDone(*conn.worker, frame->payload, now);
          if (result == Coordinator::DoneResult::Incomplete) {
            diag("worker %llu handed back an incomplete lease; re-issuing",
                 static_cast<unsigned long long>(*conn.worker));
          }
          break;
        }

        case MsgType::StatusRequest:
          trySend(i, now, MsgType::StatusReply, core.statusJson(now));
          break;

        default:
          if (trySend(i, now, MsgType::Reject, "unexpected message type")) {
            dropConnection(i, now, "protocol violation");
          }
          break;
      }
    }

    // Accept AFTER dispatch: pushing into `connections` during the dispatch
    // loop would desynchronize it from `fds` (one fewer entry) and read one
    // past the end of the pollfd vector. The new socket is polled next
    // iteration; nothing is read from it until it actually signals POLLIN,
    // so a client that connects and goes silent cannot block the loop.
    if (fds[0].revents & POLLIN) {
      connections.push_back({tcpAccept(listener.fd.get()), std::nullopt});
    }

    if (core.complete() && !reportWritten) {
      // The acceptance property, held across the network boundary: the
      // final report goes through the SAME meta-binding and sorted-merge
      // path a manual shard merge takes, so it is byte-identical to a
      // single-process run whatever happened to workers and leases.
      std::size_t dropped = 0;
      const auto merged =
          mergeCheckpoints({options.checkpointPath}, &dropped);
      RF_CHECK(dropped == 0, "coordinator store has torn records after a "
                             "complete campaign");
      const std::string report = countsCsv(merged);
      if (options.reportPath) {
        writeFile(*options.reportPath, report);
      } else {
        std::fputs(report.c_str(), stdout);
      }
      reportWritten = true;
      exitDeadline = now + options.lingerSeconds;
      diag("campaign complete: %zu cells, %llu re-issue(s), %llu stale "
           "record(s) fenced; report %s",
           core.cellsDone(),
           static_cast<unsigned long long>(core.leaseReissues()),
           static_cast<unsigned long long>(core.staleRecords()),
           options.reportPath ? options.reportPath->c_str() : "-> stdout");
    }

    if (reportWritten) {
      // Linger until every worker has drained (each exits on Complete and
      // closes) or the grace period runs out — whichever comes first.
      const bool workersLeft =
          std::any_of(connections.begin(), connections.end(),
                      [](const Connection& c) { return c.worker.has_value(); });
      if (!workersLeft || now >= exitDeadline) break;
    }
  }
  return 0;
}

}  // namespace refine::campaign
