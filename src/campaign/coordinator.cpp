#include "campaign/coordinator.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdarg>
#include <cstdio>
#include <limits>
#include <map>
#include <poll.h>
#include <signal.h>
#include <utility>

#include "campaign/report.h"
#include "support/check.h"
#include "support/socket.h"
#include "support/strings.h"

namespace refine::campaign {

namespace {

double steadySeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Escapes `s` for use inside a JSON string literal. Tool keys are the only
/// free-form text statusJson embeds; meta-binding rejects framing characters
/// but not quotes or backslashes.
std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strf("\\u%04x", static_cast<unsigned>(c));
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Coordinator core (I/O-free)
// ---------------------------------------------------------------------------

Coordinator::Coordinator(CoordinatorConfig config, CheckpointStore& store,
                         double now)
    : config_(std::move(config)), store_(store), startTime_(now) {
  RF_CHECK(!config_.apps.empty(), "a campaign needs at least one app");
  RF_CHECK(!config_.tools.empty(), "a campaign needs at least one tool");
  RF_CHECK(config_.leaseCount >= 1, "lease count must be at least 1");
  RF_CHECK(config_.trials >= 1, "trials must be at least 1");
  RF_CHECK(config_.heartbeatTimeout > 0, "heartbeat timeout must be > 0");
  if (!config_.plan.empty()) {
    plan_ = parsePlanSpec(config_.plan);
    // The config carries the CANONICAL spelling (it goes into checkpoint
    // meta verbatim); accepting an alias here would let two spellings of
    // one plan fail each other's meta binding.
    RF_CHECK(plan_->canonical() == config_.plan,
             "coordinator plan spec must be canonical: got '" + config_.plan +
                 "', canonical is '" + plan_->canonical() + "'");
    RF_CHECK(config_.trials == plan_->maxTrials,
             "planned campaigns carry the plan's max cap as trials");
  }

  // Canonical cell order: apps outer, tools inner — identical to the job
  // list every worker reconstructs from a grant, so lease L's shard slice
  // means the same cells on every host.
  for (const auto& app : config_.apps) {
    for (const auto& tool : config_.tools) {
      cells_.emplace_back(app, tool);
    }
  }

  // Bind the store to this campaign before trusting (or ingesting) any
  // record — the same derivation CampaignEngine::runMatrix uses, so the
  // coordinator store merges interchangeably with manual shard stores.
  for (const auto& tool : config_.tools) {
    RF_CHECK(tool.find_first_of(" \t\n\r;") == std::string::npos,
             "tool key '" + tool + "' cannot be bound into checkpoint meta");
  }
  store_.bindCampaign({config_.baseSeed, config_.trials,
                       config_.timeoutFactor, join(config_.tools, ";"),
                       config_.plan});

  if (plan_) {
    // Planned campaigns lease (cell, round) pairs, and rounds only exist
    // as the plan unfolds — so instead of a fixed lease pool, replay the
    // store into per-cell planner state and create exactly one lease per
    // unretired cell (its next round). Ingest pushes the following round's
    // lease, growing leases_ as the campaign progresses. leaseCount is
    // meaningless here and ignored.
    RF_CHECK(cells_.size() <= std::numeric_limits<std::uint32_t>::max(),
             "planned campaigns address cells through 32-bit shard indices");
    planCells_.resize(cells_.size());
    std::vector<std::vector<const CampaignResult*>> rounds(cells_.size());
    for (const auto& record : store_.records()) {
      for (std::size_t i = 0; i < cells_.size(); ++i) {
        if (record.app == cells_[i].first && record.tool == cells_[i].second) {
          rounds[i].push_back(&record);
          break;
        }
      }
    }
    for (std::size_t i = 0; i < cells_.size(); ++i) {
      if (rounds[i].empty()) continue;
      planCells_[i] = replayPlanRounds(
          *plan_, rounds[i],
          "checkpoint " + store_.path() + " cell " + cells_[i].first + " x " +
              cells_[i].second);
    }
    for (std::size_t i = 0; i < cells_.size(); ++i) {
      if (!planRetired(*plan_, planCells_[i].counts)) pushPlanLease(i);
    }
    return;
  }

  for (const auto& record : store_.records()) {
    RF_CHECK(record.counts.total() == config_.trials,
             "checkpoint " + store_.path() + " holds " +
                 std::to_string(record.counts.total()) +
                 " trials for cell " + record.app + " x " + record.tool +
                 " but this campaign runs " + std::to_string(config_.trials));
  }

  leases_.resize(config_.leaseCount);
  for (std::uint32_t l = 0; l < config_.leaseCount; ++l) {
    Lease& lease = leases_[l];
    // Epochs of this incarnation start above every epoch a previous
    // incarnation could have granted (see epochBase), so a zombie worker
    // from before a coordinator restart is fenced by the normal epoch check.
    lease.epoch = config_.epochBase + 1;
    lease.shard = ShardSpec{l, config_.leaseCount};
    for (std::size_t i = 0; i < cells_.size(); ++i) {
      if (lease.shard.contains(i)) lease.cells.push_back(i);
    }
    // A restarted coordinator resumes: leases already fully on disk (and
    // leases with no cells at all, when leaseCount > cells) start out Done.
    if (leaseComplete(lease)) lease.state = LeaseState::Done;
  }
}

void Coordinator::pushPlanLease(std::size_t cell) {
  const PlanProgress& progress = planCells_[cell];
  Lease lease;
  lease.epoch = config_.epochBase + 1;
  // The shard selects the one cell this lease covers out of the full
  // matrix — the worker rebuilds the same apps-outer/tools-inner job list
  // from the grant and the shard picks index `cell` from it.
  lease.shard = ShardSpec{static_cast<std::uint32_t>(cell),
                          static_cast<std::uint32_t>(cells_.size())};
  lease.cells.push_back(cell);
  lease.cell = cell;
  lease.batch.round = progress.roundsDone;
  lease.batch.begin = progress.counts.total();
  lease.batch.count =
      planNextBatch(*plan_, progress.roundsDone, progress.counts);
  RF_CHECK(lease.batch.count > 0,
           "pushPlanLease on a retired cell (planner invariant broken)");
  leases_.push_back(std::move(lease));
}

bool Coordinator::leaseComplete(const Lease& lease) const {
  if (plan_) {
    // A (cell, round) lease is complete exactly when its round's record is
    // in the store — ingest is what advances the plan.
    return store_.findRound(cells_[lease.cell].first,
                            cells_[lease.cell].second,
                            lease.batch.round) != nullptr;
  }
  return std::all_of(lease.cells.begin(), lease.cells.end(),
                     [&](std::size_t cell) {
                       return store_.contains(cells_[cell].first,
                                              cells_[cell].second);
                     });
}

std::uint64_t Coordinator::addWorker() {
  ++workersConnected_;
  return nextWorker_++;
}

bool Coordinator::reissue(Lease& lease) {
  ++lease.epoch;  // fences every in-flight message of the old holder
  lease.worker = 0;
  if (leaseComplete(lease)) {
    // The holder died after streaming every record but before LeaseDone:
    // nothing is left to compute, so finish the lease instead of handing
    // the shard to another worker just to have every record deduplicated.
    lease.state = LeaseState::Done;
    return false;
  }
  ++lease.reissues;
  if (config_.maxLeaseReissues > 0 &&
      lease.reissues > config_.maxLeaseReissues) {
    // Something about this shard kills every worker that touches it (or
    // eats their records). Granting it again would only feed the grinder;
    // park it terminally and let the serve loop decide between waiting for
    // an operator and emitting a partial report.
    lease.state = LeaseState::Quarantined;
    return false;
  }
  lease.state = LeaseState::Unassigned;
  ++leaseReissues_;
  return true;
}

std::size_t Coordinator::removeWorker(std::uint64_t worker, double) {
  if (workersConnected_ > 0) --workersConnected_;
  std::size_t reclaimed = 0;
  for (Lease& lease : leases_) {
    if (lease.state == LeaseState::Active && lease.worker == worker) {
      if (reissue(lease)) ++reclaimed;
    }
  }
  return reclaimed;
}

Coordinator::RequestReply Coordinator::onRequest(std::uint64_t worker,
                                                 double now) {
  // Settled (not merely complete): once every lease is Done or Quarantined
  // there is no work a worker could ever be granted, so tell it the
  // campaign is over rather than making it Wait-poll a stuck coordinator.
  if (settled()) return {RequestKind::Complete, {}};
  for (std::size_t l = 0; l < leases_.size(); ++l) {
    Lease& lease = leases_[l];
    if (lease.state != LeaseState::Unassigned) continue;
    lease.state = LeaseState::Active;
    lease.worker = worker;
    lease.lastTraffic = now;

    LeaseGrant grant;
    grant.leaseId = l;
    grant.epoch = lease.epoch;
    grant.shard = lease.shard;
    grant.baseSeed = config_.baseSeed;
    grant.trials = config_.trials;
    grant.timeoutFactor = config_.timeoutFactor;
    grant.heartbeatTimeout = config_.heartbeatTimeout;
    grant.apps = config_.apps;
    grant.tools = config_.tools;
    if (plan_) grant.batch = lease.batch;
    return {RequestKind::Grant, std::move(grant)};
  }
  return {RequestKind::Wait, {}};
}

Coordinator::Lease* Coordinator::fence(std::uint64_t worker,
                                       const LeaseRef& ref) {
  if (ref.leaseId >= leases_.size()) return nullptr;
  Lease& lease = leases_[ref.leaseId];
  if (lease.state != LeaseState::Active || lease.worker != worker ||
      lease.epoch != ref.epoch) {
    return nullptr;
  }
  return &lease;
}

Coordinator::Ingest Coordinator::onRecord(std::uint64_t worker,
                                          std::string_view payload,
                                          double now) {
  const auto decoded = decodeRecord(payload);
  if (!decoded) {
    ++corruptRecords_;
    return Ingest::Corrupt;
  }
  const auto record = CheckpointStore::decode(decoded->line);
  if (!record) {
    ++corruptRecords_;
    return Ingest::Corrupt;
  }
  Lease* lease = fence(worker, decoded->ref);
  if (lease == nullptr) {
    // A zombie holder of a re-issued lease: its records are (by the
    // determinism contract) identical to the new holder's, but accepting
    // them would launder unverifiable traffic — drop and count instead.
    ++staleRecords_;
    return Ingest::Stale;
  }
  lease->lastTraffic = now;

  if (plan_) {
    const std::size_t cell = lease->cell;
    const auto& cellKey = cells_[cell];
    // A planned record must be exactly the round this lease leased: same
    // cell, same round tag, the batch's trial count. Anything else means
    // the worker diverged from its grant — contradictory-worker
    // containment (the serve loop drops it) rather than ingesting poison.
    RF_CHECK(record->planRound.has_value(),
             "worker streamed an untagged record into a planned campaign "
             "(cell " + record->app + " x " + record->tool + ")");
    RF_CHECK(record->app == cellKey.first && record->tool == cellKey.second,
             "worker streamed cell " + record->app + " x " + record->tool +
                 " for a lease covering " + cellKey.first + " x " +
                 cellKey.second);
    RF_CHECK(*record->planRound == lease->batch.round,
             "worker streamed round " + std::to_string(*record->planRound) +
                 " for a lease covering round " +
                 std::to_string(lease->batch.round) + " of cell " +
                 cellKey.first + " x " + cellKey.second);
    RF_CHECK(record->counts.total() == lease->batch.count,
             "worker streamed " + std::to_string(record->counts.total()) +
                 " trials for a batch of " +
                 std::to_string(lease->batch.count) + " (cell " +
                 cellKey.first + " x " + cellKey.second + " round " +
                 std::to_string(lease->batch.round) + ")");

    PlanProgress& progress = planCells_[cell];
    if (const CampaignResult* existing =
            store_.findRound(record->app, record->tool, lease->batch.round)) {
      RF_CHECK(existing->counts == record->counts &&
                   existing->dynamicTargets == record->dynamicTargets &&
                   existing->profileInstrs == record->profileInstrs &&
                   existing->binarySize == record->binarySize,
               "conflicting duplicate for cell " + record->app + " x " +
                   record->tool + " round " +
                   std::to_string(lease->batch.round) +
                   " (a worker disagrees with the stored deterministic "
                   "fields — determinism contract broken)");
      lease->state = LeaseState::Done;
      lease->worker = 0;
      return Ingest::Duplicate;
    }
    if (progress.roundsDone == 0) {
      progress.dynamicTargets = record->dynamicTargets;
      progress.profileInstrs = record->profileInstrs;
      progress.binarySize = record->binarySize;
    } else {
      RF_CHECK(progress.dynamicTargets == record->dynamicTargets &&
                   progress.profileInstrs == record->profileInstrs &&
                   progress.binarySize == record->binarySize,
               "cell " + cellKey.first + " x " + cellKey.second +
                   " round " + std::to_string(lease->batch.round) +
                   " disagrees with earlier rounds on the deterministic "
                   "fields — determinism contract broken");
    }
    store_.append(*record);
    trialsIngested_ += record->counts.total();
    progress.counts += record->counts;
    progress.seconds += record->totalTrialSeconds;
    ++progress.roundsDone;
    // Re-plan on ingest: this round's evidence decides whether the cell
    // retires or gets its next round leased. pushPlanLease may reallocate
    // leases_, so settle this lease first and never touch `lease` after.
    lease->state = LeaseState::Done;
    lease->worker = 0;
    if (!planRetired(*plan_, progress.counts)) pushPlanLease(cell);
    return Ingest::Accepted;
  }

  RF_CHECK(record->counts.total() == config_.trials,
           "worker streamed " + std::to_string(record->counts.total()) +
               " trials for cell " + record->app + " x " + record->tool +
               " but this campaign runs " + std::to_string(config_.trials));

  if (const CampaignResult* existing =
          store_.find(record->app, record->tool)) {
    // Same dedup rule as mergeCheckpoints: duplicates must agree on every
    // deterministic field; wall time is measurement, not contract.
    RF_CHECK(existing->counts == record->counts &&
                 existing->dynamicTargets == record->dynamicTargets &&
                 existing->profileInstrs == record->profileInstrs &&
                 existing->binarySize == record->binarySize,
             "conflicting duplicate for cell " + record->app + " x " +
                 record->tool +
                 " (a worker disagrees with the stored deterministic "
                 "fields — determinism contract broken)");
    return Ingest::Duplicate;
  }
  store_.append(*record);
  trialsIngested_ += record->counts.total();
  return Ingest::Accepted;
}

bool Coordinator::onHeartbeat(std::uint64_t worker, std::string_view payload,
                              double now) {
  const auto ref = decodeLeaseRef(payload);
  if (!ref) return false;
  Lease* lease = fence(worker, *ref);
  if (lease == nullptr) return false;
  lease->lastTraffic = now;
  return true;
}

Coordinator::DoneResult Coordinator::onLeaseDone(std::uint64_t worker,
                                                 std::string_view payload,
                                                 double) {
  const auto ref = decodeLeaseRef(payload);
  if (!ref) return DoneResult::Stale;
  Lease* lease = fence(worker, *ref);
  if (lease == nullptr) return DoneResult::Stale;
  if (!leaseComplete(*lease)) {
    // Records precede LeaseDone in the protocol; a hand-back with cells
    // missing means frames were lost or the worker misbehaved. Re-issue
    // instead of trusting it.
    reissue(*lease);
    return DoneResult::Incomplete;
  }
  lease->state = LeaseState::Done;
  lease->worker = 0;
  return DoneResult::Ok;
}

std::vector<std::uint64_t> Coordinator::checkExpiry(double now) {
  std::vector<std::uint64_t> reissued;
  for (std::size_t l = 0; l < leases_.size(); ++l) {
    Lease& lease = leases_[l];
    if (lease.state == LeaseState::Active &&
        now - lease.lastTraffic > config_.heartbeatTimeout) {
      if (reissue(lease)) reissued.push_back(l);
    }
  }
  return reissued;
}

bool Coordinator::complete() const noexcept {
  const bool leasesDone =
      std::all_of(leases_.begin(), leases_.end(), [](const Lease& lease) {
        return lease.state == LeaseState::Done;
      });
  if (!plan_) return leasesDone;
  // Planned: every lease Done is necessary but not sufficient — the
  // campaign is over when every CELL retired (ingest pushes a fresh lease
  // whenever a cell has rounds left, so both conditions settle together).
  if (!leasesDone) return false;
  for (const PlanProgress& progress : planCells_) {
    if (!planRetired(*plan_, progress.counts)) return false;
  }
  return true;
}

bool Coordinator::settled() const noexcept {
  return std::all_of(leases_.begin(), leases_.end(), [](const Lease& lease) {
    return lease.state == LeaseState::Done ||
           lease.state == LeaseState::Quarantined;
  });
}

std::vector<std::uint64_t> Coordinator::quarantinedLeases() const {
  std::vector<std::uint64_t> ids;
  for (std::size_t l = 0; l < leases_.size(); ++l) {
    if (leases_[l].state == LeaseState::Quarantined) ids.push_back(l);
  }
  return ids;
}

std::size_t Coordinator::cellsDone() const noexcept {
  if (plan_) {
    std::size_t retired = 0;
    for (const PlanProgress& progress : planCells_) {
      if (planRetired(*plan_, progress.counts)) ++retired;
    }
    return retired;
  }
  return store_.records().size();
}

std::string Coordinator::statusJson(double now) const {
  std::size_t unassigned = 0, active = 0, done = 0, quarantined = 0;
  for (const Lease& lease : leases_) {
    switch (lease.state) {
      case LeaseState::Unassigned: ++unassigned; break;
      case LeaseState::Active: ++active; break;
      case LeaseState::Done: ++done; break;
      case LeaseState::Quarantined: ++quarantined; break;
    }
  }

  // Per-tool outcome aggregates over everything ingested so far (including
  // cells resumed from a pre-existing store: they are campaign progress).
  std::map<std::string, OutcomeCounts> perTool;
  std::uint64_t trialsDone = 0;
  for (const auto& record : store_.records()) {
    perTool[record.tool] += record.counts;
    trialsDone += record.counts.total();
  }

  const double elapsed = std::max(now - startTime_, 0.0);
  const double trialsPerSec =
      elapsed > 0 ? static_cast<double>(trialsIngested_) / elapsed : 0.0;

  std::string perToolJson;
  for (const auto& tool : config_.tools) {
    const OutcomeCounts counts = perTool.count(tool) ? perTool.at(tool)
                                                     : OutcomeCounts{};
    if (!perToolJson.empty()) perToolJson += ',';
    perToolJson += strf(
        "\"%s\":{\"crash\":%llu,\"soc\":%llu,\"benign\":%llu,"
        "\"detected\":%llu}",
        jsonEscape(tool).c_str(),
        static_cast<unsigned long long>(counts.crash),
        static_cast<unsigned long long>(counts.soc),
        static_cast<unsigned long long>(counts.benign),
        static_cast<unsigned long long>(counts.detected));
  }

  // Planned campaigns interpose a "plan" key (and trials_total becomes the
  // worst-case cap, max·cells — actual totals land lower, that is the
  // point). Flat status lines are byte-identical to pre-planner builds.
  const std::string planField =
      plan_ ? strf("\"plan\":\"%s\",", jsonEscape(config_.plan).c_str())
            : std::string();

  return strf(
      "{\"complete\":%s,\"settled\":%s,%s\"cells_total\":%zu,"
      "\"cells_done\":%zu,"
      "\"trials_total\":%llu,\"trials_done\":%llu,\"trials_per_sec\":%s,"
      "\"elapsed_sec\":%s,\"workers\":%zu,\"leases_total\":%zu,"
      "\"leases_unassigned\":%zu,\"leases_active\":%zu,\"leases_done\":%zu,"
      "\"leases_quarantined\":%zu,"
      "\"lease_reissues\":%llu,\"stale_records\":%llu,"
      "\"corrupt_records\":%llu,\"per_tool\":{%s}}",
      complete() ? "true" : "false", settled() ? "true" : "false",
      planField.c_str(), cells_.size(), cellsDone(),
      static_cast<unsigned long long>(config_.trials * cells_.size()),
      static_cast<unsigned long long>(trialsDone),
      formatDouble(trialsPerSec).c_str(), formatDouble(elapsed).c_str(),
      workersConnected_, leases_.size(), unassigned, active, done,
      quarantined,
      static_cast<unsigned long long>(leaseReissues_),
      static_cast<unsigned long long>(staleRecords_),
      static_cast<unsigned long long>(corruptRecords_), perToolJson.c_str());
}

// ---------------------------------------------------------------------------
// Serving loop
// ---------------------------------------------------------------------------

namespace {

/// One accepted connection. A connection becomes a *worker* after a valid
/// Hello; status clients never greet and only ever ask for status.
struct Connection {
  UniqueFd fd;
  std::optional<std::uint64_t> worker;
};

void diag(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void diag(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::fputs("[refine-campaign] ", stderr);
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
  va_end(args);
}

/// Which drain signal (SIGTERM/SIGINT) arrived, 0 for none. The handler is
/// installed without SA_RESTART on purpose: a drain must interrupt the
/// blocked poll() (EINTR) so the serve loop notices within one iteration,
/// not within one poll timeout.
volatile std::sig_atomic_t gDrainSignal = 0;

extern "C" void drainSignalHandler(int sig) { gDrainSignal = sig; }

/// Installs SIGTERM/SIGINT -> drain for the lifetime of one serve and
/// restores the previous dispositions afterwards, so tests running many
/// serves in one process don't leak handlers into each other.
class ScopedDrainHandlers {
 public:
  explicit ScopedDrainHandlers(bool install) : installed_(install) {
    if (!installed_) return;
    gDrainSignal = 0;
    struct sigaction action {};
    action.sa_handler = drainSignalHandler;
    ::sigemptyset(&action.sa_mask);
    action.sa_flags = 0;  // no SA_RESTART: poll() must see EINTR
    ::sigaction(SIGTERM, &action, &oldTerm_);
    ::sigaction(SIGINT, &action, &oldInt_);
  }
  ~ScopedDrainHandlers() {
    if (!installed_) return;
    ::sigaction(SIGTERM, &oldTerm_, nullptr);
    ::sigaction(SIGINT, &oldInt_, nullptr);
  }
  ScopedDrainHandlers(const ScopedDrainHandlers&) = delete;
  ScopedDrainHandlers& operator=(const ScopedDrainHandlers&) = delete;

 private:
  bool installed_;
  struct sigaction oldTerm_ {};
  struct sigaction oldInt_ {};
};

/// Reads and bumps the incarnation counter stored next to the checkpoint
/// (`<checkpoint>.generation`). Returns how many serves have run against
/// this checkpoint BEFORE this one (0 on first start, missing or garbled
/// sidecar included — worst case some fencing headroom is lost once, and
/// the dedup-equality rule still holds behind it).
std::uint64_t bumpGeneration(const std::string& checkpointPath) {
  const std::string path = checkpointPath + ".generation";
  std::uint64_t prior = 0;
  try {
    prior = parseU64(trim(readFile(path))).value_or(0);
  } catch (const std::exception&) {
    // First incarnation, or an unreadable sidecar: start from zero.
  }
  writeFile(path, std::to_string(prior + 1) + "\n");
  return prior;
}

}  // namespace

int serveCampaign(const ServeOptions& options) {
  ListenSocket listener = tcpListen(options.port);
  CheckpointStore store(options.checkpointPath);
  if (!store.records().empty() || store.droppedRecords() > 0) {
    diag("resuming from %s: %zu completed cell(s), %zu torn record(s) "
         "dropped",
         store.path().c_str(), store.records().size(),
         store.droppedRecords());
  }

  // Fence this incarnation above every epoch a previous one could have
  // granted: a worker still streaming against a pre-crash lease is rejected
  // by the ordinary epoch check instead of being mistaken for current.
  CoordinatorConfig config = options.config;
  const std::uint64_t priorIncarnations =
      bumpGeneration(options.checkpointPath);
  config.epochBase += priorIncarnations * kEpochGenerationStride;
  if (priorIncarnations > 0) {
    diag("incarnation %llu of this checkpoint: epochs start above %llu "
         "(pre-restart grants are fenced)",
         static_cast<unsigned long long>(priorIncarnations + 1),
         static_cast<unsigned long long>(config.epochBase));
  }
  Coordinator core(config, store, steadySeconds());

  if (config.plan.empty()) {
    diag("serving on port %u: %zu cells, %u leases, %llu trials/cell, "
         "heartbeat timeout %.1fs, checkpoint %s",
         listener.port, core.cellsTotal(), config.leaseCount,
         static_cast<unsigned long long>(config.trials),
         config.heartbeatTimeout, options.checkpointPath.c_str());
  } else {
    diag("serving on port %u: %zu cells, planned (%s), heartbeat timeout "
         "%.1fs, checkpoint %s",
         listener.port, core.cellsTotal(), config.plan.c_str(),
         config.heartbeatTimeout, options.checkpointPath.c_str());
  }
  if (options.onListening) options.onListening(listener.port);

  // Flat campaigns report through countsCsv; planned campaigns fold their
  // per-round records back through the planner — the SAME path a local
  // planned run or a manual merge takes, which is what makes the served
  // report byte-identical to both.
  auto renderReport = [&config](const std::vector<CampaignResult>& merged) {
    if (config.plan.empty()) return countsCsv(merged);
    const PlanSpec spec = parsePlanSpec(config.plan);
    return plannedCountsCsv(foldPlannedRecords(merged, spec), spec);
  };

  ScopedDrainHandlers drainHandlers(options.installSignalHandlers);
  const double serveStart = steadySeconds();
  const double deadlineAt = options.deadlineSeconds > 0
                                ? serveStart + options.deadlineSeconds
                                : 0.0;

  std::vector<Connection> connections;
  bool reportWritten = false;
  int exitCode = kServeExitOk;
  double exitDeadline = 0.0;
  std::size_t quarantinedLogged = 0;

  auto dropConnection = [&](std::size_t index, double now,
                            const char* why) {
    Connection& conn = connections[index];
    if (conn.worker) {
      const std::size_t reclaimed = core.removeWorker(*conn.worker, now);
      diag("worker %llu gone (%s)%s",
           static_cast<unsigned long long>(*conn.worker), why,
           reclaimed > 0 ? strf(", re-issuing %zu lease(s)", reclaimed)
                               .c_str()
                         : "");
    }
    connections.erase(connections.begin() + static_cast<std::ptrdiff_t>(index));
  };

  // Replies can hit EPIPE/ECONNRESET when the peer died between its request
  // and our answer; the coordinator must outlive any client, so a failed
  // write reclaims that one connection (re-issuing its leases) instead of
  // propagating out of the serve loop. Returns false when the connection
  // was dropped — `connections[index]` is invalid afterwards.
  auto trySend = [&](std::size_t index, double now, MsgType type,
                     std::string_view payload) -> bool {
    try {
      writeFrame(connections[index].fd.get(), type, payload);
      return true;
    } catch (const CheckError& e) {
      diag("dropping connection: %s", e.what());
      dropConnection(index, now, "write failed");
      return false;
    }
  };

  while (true) {
    std::vector<pollfd> fds;
    fds.push_back({listener.fd.get(), POLLIN, 0});
    for (const Connection& conn : connections) {
      fds.push_back({conn.fd.get(), POLLIN, 0});
    }
    // The timeout bounds how late a heartbeat expiry can be noticed.
    const int rc = ::poll(fds.data(), fds.size(), 200);
    RF_CHECK(rc >= 0 || errno == EINTR, "poll() failed");
    double now = steadySeconds();

    // A drain (signal or test stop-flag) ends the serve resumable: the
    // store flushes on every append, so whatever is on disk IS the resume
    // point — re-running the same command picks up from it.
    const bool stopRequested =
        gDrainSignal != 0 ||
        (options.stopFlag != nullptr && options.stopFlag->load());
    if (stopRequested && !reportWritten) {
      diag("drain requested (%s): checkpoint %s holds %zu cell(s); exiting "
           "resumable",
           gDrainSignal == SIGTERM  ? "SIGTERM"
           : gDrainSignal == SIGINT ? "SIGINT"
                                    : "stop flag",
           options.checkpointPath.c_str(), core.cellsDone());
      return kServeExitResumable;
    }

    for (const std::uint64_t leaseId : core.checkExpiry(now)) {
      diag("lease %llu missed its heartbeat deadline, re-issuing",
           static_cast<unsigned long long>(leaseId));
    }
    const auto quarantined = core.quarantinedLeases();
    for (std::size_t q = quarantinedLogged; q < quarantined.size(); ++q) {
      diag("lease %llu quarantined: re-issued %llu times without "
           "completing — its shard is poisoned and will not be granted "
           "again",
           static_cast<unsigned long long>(quarantined[q]),
           static_cast<unsigned long long>(config.maxLeaseReissues));
    }
    quarantinedLogged = quarantined.size();

    // rc < 0 means EINTR: `fds` was never filled in, so its revents are
    // whatever the previous iteration left there — dispatching on them
    // would re-read connections that signalled nothing (and block on
    // sockets with no data). Skip straight to the time-based work.
    // Walk backwards so dropping a connection cannot shift unvisited ones.
    // New connections are accepted only AFTER this loop: fds[i + 1] maps to
    // connections[i] exactly because `connections` has not grown since the
    // poll() that filled fds.
    for (std::size_t i = rc > 0 ? connections.size() : 0; i-- > 0;) {
      if (!(fds[i + 1].revents & (POLLIN | POLLHUP | POLLERR))) continue;
      Connection& conn = connections[i];
      std::optional<Frame> frame;
      try {
        frame = readFrame(conn.fd.get());
      } catch (const CheckError& e) {
        // Torn mid-frame (a worker SIGKILLed mid-write) or garbage bytes:
        // either way the stream is unusable — reclaim and move on.
        now = steadySeconds();
        diag("dropping connection: %s", e.what());
        dropConnection(i, now, "bad stream");
        continue;
      }
      now = steadySeconds();
      if (!frame) {
        dropConnection(i, now, "disconnected");
        continue;
      }

      switch (frame->type) {
        case MsgType::Hello:
          if (frame->payload != kNetHello) {
            if (trySend(i, now, MsgType::Reject,
                        strf("protocol mismatch: coordinator speaks '%.*s'",
                             static_cast<int>(kNetHello.size()),
                             kNetHello.data()))) {
              dropConnection(i, now, "version mismatch");
            }
            break;
          }
          conn.worker = core.addWorker();
          diag("worker %llu connected",
               static_cast<unsigned long long>(*conn.worker));
          break;

        case MsgType::Request: {
          if (!conn.worker) {
            if (trySend(i, now, MsgType::Reject, "Hello first")) {
              dropConnection(i, now, "no hello");
            }
            break;
          }
          const auto reply = core.onRequest(*conn.worker, now);
          switch (reply.kind) {
            case Coordinator::RequestKind::Grant:
              diag("lease %llu (epoch %llu, shard %u/%u) -> worker %llu",
                   static_cast<unsigned long long>(reply.grant.leaseId),
                   static_cast<unsigned long long>(reply.grant.epoch),
                   reply.grant.shard.index, reply.grant.shard.count,
                   static_cast<unsigned long long>(*conn.worker));
              // A failed Grant write reclaims the just-activated lease via
              // dropConnection -> removeWorker, epoch bumped as usual.
              trySend(i, now, MsgType::Grant, encodeGrant(reply.grant));
              break;
            case Coordinator::RequestKind::Wait:
              trySend(i, now, MsgType::Wait, "250");
              break;
            case Coordinator::RequestKind::Complete:
              trySend(i, now, MsgType::Complete, "");
              break;
          }
          break;
        }

        case MsgType::Record: {
          if (!conn.worker) break;
          Coordinator::Ingest result;
          try {
            result = core.onRecord(*conn.worker, frame->payload, now);
          } catch (const CheckError& e) {
            // A record that decodes and checksums cleanly but contradicts
            // the campaign (wrong trial count, deterministic fields that
            // disagree with the store): the WORKER is poisoned — a grant
            // corrupted in flight, a diverging build — and nothing it
            // streams can be trusted. Containment beats dying: drop the
            // connection, re-issue its leases, and let the re-issue cap
            // quarantine the shard if the poison persists.
            diag("worker %llu streamed a contradictory record: %s",
                 static_cast<unsigned long long>(*conn.worker), e.what());
            dropConnection(i, now, "contradictory record");
            break;
          }
          if (result == Coordinator::Ingest::Accepted) {
            diag("ingested cell %zu/%zu from worker %llu", core.cellsDone(),
                 core.cellsTotal(),
                 static_cast<unsigned long long>(*conn.worker));
          } else if (result == Coordinator::Ingest::Stale) {
            diag("fenced stale record from worker %llu (lease re-issued "
                 "under a newer epoch)",
                 static_cast<unsigned long long>(*conn.worker));
          } else if (result == Coordinator::Ingest::Corrupt) {
            diag("dropped corrupt record frame from worker %llu",
                 static_cast<unsigned long long>(*conn.worker));
          }
          break;
        }

        case MsgType::Heartbeat:
          if (conn.worker) core.onHeartbeat(*conn.worker, frame->payload, now);
          break;

        case MsgType::LeaseDone: {
          if (!conn.worker) break;
          const auto result =
              core.onLeaseDone(*conn.worker, frame->payload, now);
          if (result == Coordinator::DoneResult::Incomplete) {
            diag("worker %llu handed back an incomplete lease; re-issuing",
                 static_cast<unsigned long long>(*conn.worker));
          }
          break;
        }

        case MsgType::StatusRequest:
          trySend(i, now, MsgType::StatusReply, core.statusJson(now));
          break;

        default:
          if (trySend(i, now, MsgType::Reject, "unexpected message type")) {
            dropConnection(i, now, "protocol violation");
          }
          break;
      }
    }

    // Accept AFTER dispatch: pushing into `connections` during the dispatch
    // loop would desynchronize it from `fds` (one fewer entry) and read one
    // past the end of the pollfd vector. The new socket is polled next
    // iteration; nothing is read from it until it actually signals POLLIN,
    // so a client that connects and goes silent cannot block the loop.
    if (rc > 0 && (fds[0].revents & POLLIN)) {
      try {
        UniqueFd accepted = tcpAccept(listener.fd.get());
        // Bound every syscall on this peer: once it signals readability it
        // must produce a whole frame (and drain our replies) within the
        // heartbeat budget, or it is treated as dead. A peer trickling one
        // byte per timeout could otherwise blackhole the dispatch loop.
        setSocketDeadline(accepted.get(),
                          std::max(1.0, config.heartbeatTimeout));
        connections.push_back({std::move(accepted), std::nullopt});
      } catch (const CheckError& e) {
        // ECONNABORTED and friends: the peer vanished between the listen
        // queue and our accept. Its lease state is untouched; carry on.
        diag("accept failed: %s", e.what());
      }
    }

    if (core.complete() && !reportWritten) {
      // The acceptance property, held across the network boundary: the
      // final report goes through the SAME meta-binding and sorted-merge
      // path a manual shard merge takes, so it is byte-identical to a
      // single-process run whatever happened to workers and leases.
      std::size_t dropped = 0;
      const auto merged =
          mergeCheckpoints({options.checkpointPath}, &dropped);
      RF_CHECK(dropped == 0, "coordinator store has torn records after a "
                             "complete campaign");
      const std::string report = renderReport(merged);
      if (options.reportPath) {
        writeFile(*options.reportPath, report);
      } else {
        std::fputs(report.c_str(), stdout);
      }
      reportWritten = true;
      exitDeadline = now + options.lingerSeconds;
      diag("campaign complete: %zu cells, %llu re-issue(s), %llu stale "
           "record(s) fenced; report %s",
           core.cellsDone(),
           static_cast<unsigned long long>(core.leaseReissues()),
           static_cast<unsigned long long>(core.staleRecords()),
           options.reportPath ? options.reportPath->c_str() : "-> stdout");
    }

    if (!reportWritten && !core.complete()) {
      // Two ways a campaign stops being finishable: every remaining lease
      // is quarantined (settled but incomplete), or the wall-clock budget
      // ran out. Without --allow-partial that is a hard stop (the
      // checkpoint keeps everything done so far); with it, an explicitly
      // marked partial report is emitted and the exit code says so.
      const bool poisoned = core.settled();
      const bool expired = deadlineAt > 0 && now >= deadlineAt;
      if (poisoned || expired) {
        const char* why = poisoned ? "every remaining lease is quarantined"
                                   : "campaign deadline expired";
        if (!options.allowPartial) {
          diag("campaign cannot finish: %s; %zu/%zu cells are in %s — "
               "fix the cause and re-run to resume, or re-run with "
               "--allow-partial for an explicit partial report",
               why, core.cellsDone(), core.cellsTotal(),
               options.checkpointPath.c_str());
          return kServeExitStuck;
        }
        std::size_t dropped = 0;
        const auto merged =
            mergeCheckpoints({options.checkpointPath}, &dropped);
        std::string quarantineList;
        for (const std::uint64_t id : core.quarantinedLeases()) {
          if (!quarantineList.empty()) quarantineList += ',';
          quarantineList += std::to_string(id);
        }
        // The marker line makes a partial report impossible to mistake for
        // a complete one in any downstream diff or ingestion.
        std::string report = renderReport(merged);
        report += strf("# partial: %zu/%zu cells (%s; quarantined leases: "
                       "%s)\n",
                       core.cellsDone(), core.cellsTotal(), why,
                       quarantineList.empty() ? "none"
                                              : quarantineList.c_str());
        if (options.reportPath) {
          writeFile(*options.reportPath, report);
        } else {
          std::fputs(report.c_str(), stdout);
        }
        reportWritten = true;
        exitCode = kServeExitPartial;
        exitDeadline = now + options.lingerSeconds;
        diag("partial report (%s): %zu/%zu cells; report %s", why,
             core.cellsDone(), core.cellsTotal(),
             options.reportPath ? options.reportPath->c_str()
                                : "-> stdout");
      }
    }

    if (reportWritten) {
      // Linger until every worker has drained (each exits on Complete and
      // closes) or the grace period runs out — whichever comes first.
      const bool workersLeft =
          std::any_of(connections.begin(), connections.end(),
                      [](const Connection& c) { return c.worker.has_value(); });
      if (!workersLeft || now >= exitDeadline) break;
    }
  }
  return exitCode;
}

}  // namespace refine::campaign
