// The shipped scenario battery: every named scenario is ONE spec line
// registered through a SpecFactory — no factory subclass, no enum edit, no
// engine change. A named scenario is an alias for the spec's canonical
// spelling, pinned here so campaign matrices, checkpoint metas and reports
// can refer to a stable short key; the same fault models are reachable
// anonymously via `refine-campaign --tool '<spec>'`.
//
// Keep this table in sync with the README "Scenario cookbook" table — CI
// diffs the README against the registry (`refine-campaign --list-tools`)
// and fails on drift.
#include "campaign/spec.h"

namespace refine::campaign {
namespace {

/// One registration per scenario. parseToolSpec never touches the registry,
/// so building the ToolSpec during static initialization is order-safe; the
/// base tool is resolved lazily at create() time.
InjectorRegistration scenario(const char* name, const char* spec) {
  return InjectorRegistration(
      std::make_unique<SpecFactory>(name, parseToolSpec(spec)));
}

// Instruction-class populations (REFINE sees all of these; the stack class
// is EMPTY for IR-level tools — the paper's Listing 1 argument).
const InjectorRegistration regStack = scenario("REFINE-STACK",
                                               "REFINE:instrs=stack");
const InjectorRegistration regArith = scenario("REFINE-ARITH",
                                               "REFINE:instrs=arithm");
const InjectorRegistration regMem = scenario("REFINE-MEM",
                                             "REFINE:instrs=mem");

// FP-register populations: faults land only in floating-point destinations.
// Registered for all three techniques so the paper's accuracy comparison
// (REFINE vs PINFI populations identical, LLFI's IR view diverging) extends
// to the FP-only model.
const InjectorRegistration regFp = scenario("REFINE-FP", "REFINE:instrs=fp");
const InjectorRegistration regPinfiFp = scenario("PINFI-FP",
                                                 "PINFI:instrs=fp");
const InjectorRegistration regLlfiFp = scenario("LLFI-FP", "LLFI:instrs=fp");

// Multi-bit upsets: a 2-bit adjacent burst (the classic MCU pattern) and a
// 4-bit independent scatter.
const InjectorRegistration reg2Bit = scenario("REFINE-2BIT", "REFINE:bits=2");
const InjectorRegistration reg4BitScatter =
    scenario("REFINE-4BIT-SCATTER", "REFINE:bits=4,mode=independent");

// Per-function targeting: every benchmark app has a main, so this scenario
// is total over the app set while still exercising the funcs filter.
const InjectorRegistration regMain = scenario("REFINE-MAIN",
                                              "REFINE:funcs=main");

// Software fault tolerance (opt/protect.h): REFINE's register-file fault
// model against a target hardened by duplication-with-compare, triple
// modular redundancy, and control-flow signature checking. Pair any of
// these with plain REFINE for a protected-vs-unprotected campaign (or let
// `refine-campaign --protect-suite` build the full matrix).
const InjectorRegistration regDwc = scenario("REFINE-DWC",
                                             "REFINE:protect=dwc");
const InjectorRegistration regTmr = scenario("REFINE-TMR",
                                             "REFINE:protect=tmr");
const InjectorRegistration regCfcss = scenario("REFINE-CFCSS",
                                               "REFINE:protect=cfcss");

}  // namespace
}  // namespace refine::campaign
