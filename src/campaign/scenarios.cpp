// Scenario injectors composed purely through the registry: each one here is
// a single InjectorRegistration — no edits to the Tool enum, the campaign
// engine, the runner, or any switch. This file is the template for adding
// further scenarios (new instruction-class filters, function subsets, ...).
#include "campaign/registry.h"

namespace refine::campaign {
namespace {

/// REFINE with the fault population restricted to one -fi-instrs instruction
/// class from fi::FiConfig. The stack class is the interesting default: it
/// selects exactly the machine-only stack-management instructions of the
/// paper's Listing 1, a population that is EMPTY for IR-level tools.
class RefineClassFactory final : public InjectorFactory {
 public:
  RefineClassFactory(std::string name, fi::InstrSel instrs)
      : name_(std::move(name)), instrs_(instrs) {}

  std::string_view name() const override { return name_; }

  std::unique_ptr<ToolInstance> create(
      std::string_view source, const fi::FiConfig& config) const override {
    fi::FiConfig restricted = config;
    restricted.enabled = true;
    restricted.instrs = instrs_;
    return InjectorRegistry::global().get("REFINE").create(source, restricted);
  }

 private:
  std::string name_;
  fi::InstrSel instrs_;
};

const InjectorRegistration registerRefineStack(
    std::make_unique<RefineClassFactory>("REFINE-STACK", fi::InstrSel::Stack));

}  // namespace
}  // namespace refine::campaign
