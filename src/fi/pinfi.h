// PINFI: binary-level fault injection via dynamic binary instrumentation
// (the paper's accuracy baseline, Sec. 5.2).
//
// Operates on the *uninstrumented* binary through the VM's per-instruction
// hook — the analogue of a PIN analysis routine. At "instrumentation time"
// (construction) it statically classifies every instruction of the program
// as target / non-target, mirroring PIN trace instrumentation; at run time
// the hook counts dynamic targets and, on the chosen one, flips one bit in
// one output operand and then *detaches* — the performance optimization the
// paper added to PINFI ("removes any instrumentation and detaches from the
// application once the single fault has been injected").
#pragma once

#include <cstdint>
#include <optional>

#include "backend/program.h"
#include "fi/config.h"
#include "fi/library.h"
#include "vm/machine.h"

namespace refine::fi {

class Pinfi {
 public:
  /// "Instrumentation time": classify targets of `program` under `config`.
  Pinfi(const backend::Program& program, const FiConfig& config);

  /// Number of static target instructions.
  std::uint64_t staticTargets() const noexcept { return staticTargets_; }

  struct RunResult {
    vm::ExecResult exec;
    std::uint64_t dynamicTargets = 0;
    std::optional<FaultRecord> fault;
  };

  /// Profiling run: counts dynamic target instructions, never injects.
  RunResult profile(std::uint64_t budget) const;

  /// Injection run: flips one bit after the `targetIndex`-th (1-based)
  /// dynamic target instruction, then detaches.
  RunResult inject(std::uint64_t targetIndex, std::uint64_t seed,
                   std::uint64_t budget) const;

 private:
  const backend::Program& program_;
  std::vector<std::uint8_t> isTarget_;  // per instruction index
  std::uint64_t staticTargets_ = 0;
};

}  // namespace refine::fi
