// PINFI: binary-level fault injection via dynamic binary instrumentation
// (the paper's accuracy baseline, Sec. 5.2).
//
// Operates on the *uninstrumented* binary through the VM's per-instruction
// hook — the analogue of a PIN analysis routine. At "instrumentation time"
// (construction) it statically classifies every instruction of the program
// as target / non-target, mirroring PIN trace instrumentation; at run time
// the hook counts dynamic targets and, on the chosen one, flips one bit in
// one output operand and then *detaches* — the performance optimization the
// paper added to PINFI ("removes any instrumentation and detaches from the
// application once the single fault has been injected").
//
// The engine predecodes the program once (vm/decoded.h) and shares the
// decode across all trials; profile() can additionally fill a snapshot chain
// that inject() then uses to fast-forward trials to the fault point.
#pragma once

#include <cstdint>
#include <optional>

#include "backend/program.h"
#include "fi/config.h"
#include "fi/library.h"
#include "vm/machine.h"
#include "vm/snapshot.h"

namespace refine::fi {

class Pinfi {
 public:
  /// "Instrumentation time": classify targets of `program` under `config`
  /// and predecode it for the VM.
  Pinfi(const backend::Program& program, const FiConfig& config);

  /// Number of static target instructions.
  std::uint64_t staticTargets() const noexcept { return staticTargets_; }

  struct RunResult {
    vm::ExecResult exec;
    std::uint64_t dynamicTargets = 0;
    std::optional<FaultRecord> fault;
    std::uint64_t fastForwardedInstrs = 0;  // prefix skipped via snapshot
  };

  /// Profiling run: counts dynamic target instructions, never injects. When
  /// `snapshots` is given, fills it with periodic restore points tagged with
  /// the dynamic-target count (for later fast-forwarded injections).
  RunResult profile(std::uint64_t budget,
                    vm::SnapshotChain* snapshots = nullptr) const;

  /// Injection run: flips one bit after the `targetIndex`-th (1-based)
  /// dynamic target instruction, then detaches. When `snapshots` holds a
  /// restore point before the trigger, the run resumes there and executes
  /// only the suffix (bit-identical to a cold start). `outputReserve`
  /// pre-sizes the output accumulator (pass the golden-output length).
  RunResult inject(std::uint64_t targetIndex, std::uint64_t seed,
                   std::uint64_t budget,
                   const vm::SnapshotChain* snapshots = nullptr,
                   std::size_t outputReserve = 0) const;

  /// Small POD tail of an injection run, for the out-parameter variant.
  struct InjectStats {
    std::uint64_t dynamicTargets = 0;
    std::uint64_t fastForwardedInstrs = 0;
    std::uint64_t restoredBytes = 0;
  };

  /// Hot-path variant on a caller-provided reusable machine (must be bound
  /// to this engine's program/decoded() — the campaign TrialScratch path):
  /// rewinds `machine` in place via beginTrial (delta restore), installs a
  /// hook whose per-trial state fits std::function's inline storage, and
  /// writes the execution result and fault straight into the caller's slots
  /// (reusing their capacity). Zero steady-state heap allocations.
  InjectStats inject(std::uint64_t targetIndex, std::uint64_t seed,
                     std::uint64_t budget, const vm::SnapshotChain* snapshots,
                     std::size_t outputReserve, vm::Machine& machine,
                     vm::ExecResult& exec,
                     std::optional<FaultRecord>& fault) const;

  /// The shared predecode (campaign workers bind reusable machines to it).
  const vm::DecodedProgram& decoded() const noexcept { return decoded_; }

 private:
  const backend::Program& program_;
  vm::DecodedProgram decoded_;
  /// Retained for injection-time draws: the operand population (FP-only
  /// restriction) and the bit-flip shape must match what instrumentation
  /// time classified.
  FiConfig config_;
  std::vector<std::uint8_t> isTarget_;  // per instruction index
  std::uint64_t staticTargets_ = 0;
};

}  // namespace refine::fi
