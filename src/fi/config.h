// Fault-injection configuration: the compiler-flags interface of Table 2.
//
//   -fi=true|false            enable/disable FI (default false)
//   -fi-funcs=<list>          comma-separated function names or '*' globs
//   -fi-instrs=stack|arithm|mem|all
//
// The same configuration object steers all three injectors so their target
// populations differ only by what each technique can *see*, never by
// configuration skew.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace refine::fi {

enum class InstrSel : std::uint8_t { Stack, Arith, Mem, All };

const char* instrSelName(InstrSel s) noexcept;

struct FiConfig {
  bool enabled = false;
  std::vector<std::string> funcPatterns = {"*"};
  InstrSel instrs = InstrSel::All;

  /// True when `name` matches any -fi-funcs pattern.
  bool matchesFunction(std::string_view name) const;

  /// Parses a flag string, e.g. "-fi=true -fi-funcs=* -fi-instrs=all"
  /// (the exact option string used in the paper's Sec. 4.4).
  /// Throws CheckError on malformed input.
  static FiConfig parseFlags(std::string_view flags);

  /// Convenience: everything enabled (the evaluation setting).
  static FiConfig allOn();
};

}  // namespace refine::fi
