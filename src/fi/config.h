// Fault-injection configuration: the compiler-flags interface of Table 2,
// extended with the scenario library's fault-model parameters.
//
//   -fi=true|false            enable/disable FI (default false)
//   -fi-funcs=<list>          comma-separated function names or '*' globs
//   -fi-instrs=stack|arithm|mem|fp|all
//   -fi-bits=<k>              bits flipped per fault (default 1)
//   -fi-bit-mode=adjacent|independent   placement of multi-bit flips
//
// The same configuration object steers all three injectors so their target
// populations differ only by what each technique can *see*, never by
// configuration skew. The campaign layer composes these fields from spec
// strings (campaign/spec.h): `REFINE:instrs=fp,bits=2,funcs=kernel*` is an
// FiConfig overlay resolved at instrumentation time.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "fi/faultmodel.h"
#include "opt/protect.h"

namespace refine::fi {

/// Instruction-class selector. FP is population-defining rather than a
/// backend InstrClass: it selects instructions that write at least one
/// floating-point register (whatever their class — arithmetic or FP loads),
/// and restricts the injectable operands to those FPR destinations.
enum class InstrSel : std::uint8_t { Stack, Arith, Mem, FP, All };

const char* instrSelName(InstrSel s) noexcept;

struct FiConfig {
  bool enabled = false;
  std::vector<std::string> funcPatterns = {"*"};
  InstrSel instrs = InstrSel::All;
  /// Bits flipped per fault and their placement; {1, Adjacent} is the
  /// paper's single-bit model and reproduces it bit-identically.
  BitFlip flip;
  /// Software fault-tolerance scheme applied to the module after
  /// optimization, before instrumentation (opt/protect.h). Not a fault
  /// model parameter: it changes the *program under test*, so the injector
  /// populations naturally grow to cover the redundant code.
  opt::ProtectScheme protect = opt::ProtectScheme::None;

  /// True when `name` matches any -fi-funcs pattern.
  bool matchesFunction(std::string_view name) const;

  /// Parses a flag string, e.g. "-fi=true -fi-funcs=* -fi-instrs=all"
  /// (the exact option string used in the paper's Sec. 4.4).
  /// Throws CheckError on malformed input.
  static FiConfig parseFlags(std::string_view flags);

  /// Convenience: everything enabled (the evaluation setting).
  static FiConfig allOn();
};

}  // namespace refine::fi
