#include "fi/faultmodel.h"

#include "support/check.h"
#include "support/rng.h"

namespace refine::fi {

const char* bitModeName(BitMode m) noexcept {
  switch (m) {
    case BitMode::Adjacent: return "adjacent";
    case BitMode::Independent: return "independent";
  }
  return "?";
}

std::uint64_t drawFaultMask(Rng& rng, unsigned operandBits,
                            const BitFlip& flip) {
  RF_CHECK(operandBits >= 1 && operandBits <= 64,
           "fault mask operand width out of range");
  RF_CHECK(flip.bits >= 1, "a fault flips at least one bit");
  const unsigned k = flip.bits < operandBits ? flip.bits : operandBits;
  if (flip.mode == BitMode::Adjacent || k == 1) {
    // Uniformly placed k-bit run. k == 1 reduces to the paper's single-bit
    // draw: one nextBelow(operandBits) call, mask = 1 << bit.
    const auto base = static_cast<unsigned>(rng.nextBelow(operandBits - k + 1));
    const std::uint64_t run = k == 64 ? ~0ULL : ((1ULL << k) - 1);
    return run << base;
  }
  std::uint64_t mask = 0;
  unsigned placed = 0;
  while (placed < k) {
    const auto bit = static_cast<unsigned>(rng.nextBelow(operandBits));
    if ((mask >> bit) & 1) continue;  // rejection keeps bits uniform+distinct
    mask |= 1ULL << bit;
    ++placed;
  }
  return mask;
}

}  // namespace refine::fi
