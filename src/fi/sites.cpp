#include "fi/sites.h"

#include "support/check.h"

namespace refine::fi {

using backend::InstrClass;
using backend::MachineInst;
using backend::MOp;
using backend::MOperand;
using backend::RegClass;

const char* fiOperandKindName(FiOperand::Kind k) noexcept {
  switch (k) {
    case FiOperand::Kind::GprDest: return "gpr";
    case FiOperand::Kind::FprDest: return "fpr";
    case FiOperand::Kind::SP: return "sp";
    case FiOperand::Kind::Flags: return "flags";
  }
  return "?";
}

namespace {

/// The ONE operand enumeration: canonical order (explicit register defs,
/// then SP, then flags), optionally restricted to FPR destinations. Both
/// the vector forms (instrumentation time) and the fixed-capacity set
/// (injection hot path) are views of this, so the populations cannot
/// drift apart.
FiOperandSet enumerateOutputOperands(const MachineInst& inst, bool fpOnly) {
  FiOperandSet out;
  const auto add = [&out, fpOnly](const FiOperand& fo) {
    if (fpOnly && fo.kind != FiOperand::Kind::FprDest) return;
    RF_CHECK(out.count < FiOperandSet::kMax, "FI operand set overflow");
    out.ops[out.count++] = fo;
  };
  unsigned defsLeft = inst.numDefs();
  for (const MOperand& op : inst.operands()) {
    if (defsLeft == 0) break;
    if (op.kind != MOperand::Kind::Reg) continue;
    --defsLeft;
    FiOperand fo;
    fo.kind = op.reg.cls == RegClass::FPR ? FiOperand::Kind::FprDest
                                          : FiOperand::Kind::GprDest;
    fo.reg = op.reg;
    fo.bits = 64;
    add(fo);
  }
  const auto& info = inst.info();
  if (info.defsSP) {
    FiOperand fo;
    fo.kind = FiOperand::Kind::SP;
    fo.reg = backend::spReg();
    fo.bits = 64;
    add(fo);
  }
  if (info.defsFlags) {
    FiOperand fo;
    fo.kind = FiOperand::Kind::Flags;
    fo.bits = backend::kFlagsBitWidth;
    add(fo);
  }
  return out;
}

}  // namespace

std::vector<FiOperand> fiOutputOperands(const MachineInst& inst) {
  const FiOperandSet set = enumerateOutputOperands(inst, /*fpOnly=*/false);
  return {set.ops, set.ops + set.count};
}

std::vector<FiOperand> fiOutputOperands(const MachineInst& inst,
                                        const FiConfig& config) {
  const FiOperandSet set =
      enumerateOutputOperands(inst, config.instrs == InstrSel::FP);
  return {set.ops, set.ops + set.count};
}

FiOperandSet fiOutputOperandSet(const MachineInst& inst,
                                const FiConfig& config) {
  return enumerateOutputOperands(inst, config.instrs == InstrSel::FP);
}

bool isFiTarget(const MachineInst& inst, const FiConfig& config) {
  if (inst.isFIInstrumentation()) return false;
  switch (inst.op()) {
    // Control flow transfers the PC; like PINFI we inject only into
    // register-writing computation (calls/returns/branches excluded).
    case MOp::B:
    case MOp::BCC:
    case MOp::CALL:
    case MOp::RET:
    // Runtime-library boundary and non-instructions.
    case MOp::SYSCALL:
    case MOp::FICHECK:
    case MOp::SETUPFI:
    case MOp::NOP:
    // Pseudos must be expanded before FI.
    case MOp::PARAMS:
    case MOp::CALLP:
    case MOp::SYSCALLP:
    case MOp::RETP:
      return false;
    default:
      break;
  }
  const InstrClass klass = inst.info().klass;
  switch (config.instrs) {
    case InstrSel::Stack:
      if (klass != InstrClass::Stack) return false;
      break;
    case InstrSel::Arith:
      if (klass != InstrClass::Arith) return false;
      break;
    case InstrSel::Mem:
      if (klass != InstrClass::Mem) return false;
      break;
    case InstrSel::FP:
      // Class-independent: the operand filter below keeps only instructions
      // that write at least one floating-point register.
      break;
    case InstrSel::All:
      break;
  }
  return !fiOutputOperands(inst, config).empty();
}

const FiSite& FiSiteTable::site(std::uint64_t id) const {
  RF_CHECK(id < sites_.size(), "FI site id out of range");
  return sites_[id];
}

}  // namespace refine::fi
