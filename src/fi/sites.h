// Shared fault-injection target logic: which machine instructions are
// injectable, and which output operands (destination registers, the stack
// pointer, the flags register) a fault can land in.
//
// REFINE (compile-time) and PINFI (binary-level) both use these predicates,
// so their target populations over the *same* binary are identical — which
// is precisely why their outcome distributions must match statistically
// (paper Sec. 5.4). LLFI's population lives at IR level and is defined in
// fi/llfi_pass.*.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "backend/mir.h"
#include "fi/config.h"

namespace refine::fi {

/// One injectable output operand of a machine instruction.
struct FiOperand {
  enum class Kind : std::uint8_t {
    GprDest,  // explicit general-register destination
    FprDest,  // explicit floating-point destination
    SP,       // implicit stack-pointer output (push/pop/spadj/...)
    Flags,    // implicit condition-flags output (4 bits)
  };
  Kind kind = Kind::GprDest;
  backend::Reg reg{};   // valid for GprDest/FprDest
  unsigned bits = 64;   // architectural width for bit selection
};

const char* fiOperandKindName(FiOperand::Kind k) noexcept;

/// Enumerates the output operands of `inst` in canonical order:
/// explicit register defs, then SP (if implicitly written), then flags.
std::vector<FiOperand> fiOutputOperands(const backend::MachineInst& inst);

/// Config-aware variant: the population an injector actually draws from.
/// Under -fi-instrs=fp the set is restricted to the FPR destinations, so
/// faults of the FP scenario land in floating-point registers only; every
/// other selector keeps the full canonical set.
std::vector<FiOperand> fiOutputOperands(const backend::MachineInst& inst,
                                        const FiConfig& config);

/// Fixed-capacity operand set for the per-trial injection hot path: same
/// contents and order as the vector form, no heap allocation. A machine
/// instruction defines at most one explicit register plus the implicit
/// SP/flags outputs, so the capacity is a hard architectural bound.
struct FiOperandSet {
  static constexpr unsigned kMax = 4;
  FiOperand ops[kMax];
  unsigned count = 0;

  bool empty() const noexcept { return count == 0; }
  unsigned size() const noexcept { return count; }
  const FiOperand& operator[](unsigned i) const noexcept { return ops[i]; }
};

/// Allocation-free equivalent of fiOutputOperands(inst, config).
FiOperandSet fiOutputOperandSet(const backend::MachineInst& inst,
                                const FiConfig& config);

/// True when `inst` is an injection target under `config`:
/// it has at least one output operand surviving the config's operand
/// filter, is not FI instrumentation, is not a control-flow or
/// runtime-boundary instruction, and its class matches -fi-instrs
/// (-fi-instrs=fp is class-independent: any instruction writing an FPR).
bool isFiTarget(const backend::MachineInst& inst, const FiConfig& config);

/// Compile-time site table produced by the REFINE pass: maps a site id to
/// the output operands of the instrumented instruction. This carries the
/// (nOps, size[nOps]) information the instrumented code passes to setupFI()
/// in the paper's Fig. 2.
struct FiSite {
  std::uint64_t id = 0;
  std::string function;
  std::vector<FiOperand> operands;
};

class FiSiteTable {
 public:
  std::uint64_t addSite(std::string function, std::vector<FiOperand> operands) {
    const std::uint64_t id = sites_.size();
    sites_.push_back(FiSite{id, std::move(function), std::move(operands)});
    return id;
  }
  const FiSite& site(std::uint64_t id) const;
  std::size_t size() const noexcept { return sites_.size(); }

 private:
  std::vector<FiSite> sites_;
};

}  // namespace refine::fi
