#include "fi/refine_pass.h"

#include "support/strings.h"

namespace refine::fi {

namespace {

using backend::MachineBasicBlock;
using backend::MachineFunction;
using backend::MachineInst;
using backend::MOp;
using backend::MOperand;
using backend::Reg;

/// Stack offsets of the saved state inside the PreFI region:
/// push r0; push r1; pushf  =>  [sp+0]=flags, [sp+8]=r1, [sp+16]=r0.
constexpr std::int64_t kSavedFlagsOff = 0;
constexpr std::int64_t kSavedR1Off = 8;
constexpr std::int64_t kSavedR0Off = 16;

MachineInst fi(MachineInst inst) {
  inst.setFIInstrumentation(true);
  return inst;
}

class FunctionInstrumenter {
 public:
  FunctionInstrumenter(MachineFunction& fn, const FiConfig& config,
                       FiSiteTable& sites)
      : fn_(fn), config_(config), sites_(sites) {}

  std::uint64_t run() {
    std::uint64_t instrumented = 0;
    // Blocks are appended while iterating; index-based loop is intentional.
    for (std::size_t bi = 0; bi < fn_.blocks().size(); ++bi) {
      MachineBasicBlock* bb = fn_.blocks()[bi].get();
      for (std::size_t i = 0; i < bb->insts().size(); ++i) {
        if (!isFiTarget(bb->insts()[i], config_)) continue;
        instrumentAt(bb, i);
        ++instrumented;
        // The remainder of this block moved to the continuation block; stop
        // scanning it (the outer loop visits the continuation next).
        break;
      }
    }
    return instrumented;
  }

 private:
  void instrumentAt(MachineBasicBlock* bb, std::size_t pos) {
    const MachineInst& target = bb->insts()[pos];
    // Config-aware operand set: under -fi-instrs=fp the site (and therefore
    // the PreFI dispatch blocks) covers only the FPR destinations.
    const std::uint64_t siteId =
        sites_.addSite(fn_.name(), fiOutputOperands(target, config_));
    const auto& operands = sites_.site(siteId).operands;

    // Split: move [pos+1, end) into a continuation block placed right after
    // bb (emission lays blocks contiguously, so bb falls through into it).
    MachineBasicBlock* cont =
        fn_.addBlockAfter(bb, strf("fi.cont.%llu",
                                   static_cast<unsigned long long>(siteId)));
    for (std::size_t k = pos + 1; k < bb->insts().size(); ++k) {
      cont->append(std::move(bb->insts()[k]));
    }
    bb->insts().erase(bb->insts().begin() + static_cast<std::ptrdiff_t>(pos + 1),
                      bb->insts().end());

    // Cold FI region at the end of the function.
    MachineBasicBlock* pre = fn_.addBlock(
        strf("fi.pre.%llu", static_cast<unsigned long long>(siteId)));
    std::vector<MachineBasicBlock*> flipBlocks;
    for (std::size_t k = 0; k < operands.size(); ++k) {
      flipBlocks.push_back(fn_.addBlock(
          strf("fi.op%llu.%zu", static_cast<unsigned long long>(siteId), k)));
    }
    MachineBasicBlock* post = fn_.addBlock(
        strf("fi.post.%llu", static_cast<unsigned long long>(siteId)));

    // Fast path after the target instruction.
    MachineInst check(MOp::FICHECK);
    check.add(MOperand::makeImm(static_cast<std::int64_t>(siteId)));
    check.add(MOperand::makeBlock(pre));
    bb->append(fi(std::move(check)));

    // PreFI: save state the instrumentation clobbers, then SetupFI.
    emitPush(pre, MOp::PUSH, backend::gpr(0));
    emitPush(pre, MOp::PUSH, backend::gpr(1));
    pre->append(fi(MachineInst(MOp::PUSHF)));
    MachineInst setup(MOp::SETUPFI);
    setup.add(MOperand::makeImm(static_cast<std::int64_t>(siteId)));
    pre->append(fi(std::move(setup)));
    // Dispatch on the operand index returned in r0.
    for (std::size_t k = 0; k < operands.size(); ++k) {
      MachineInst cmp(MOp::CMPri);
      cmp.add(MOperand::makeReg(backend::gpr(0)))
          .add(MOperand::makeImm(static_cast<std::int64_t>(k)));
      pre->append(fi(std::move(cmp)));
      MachineInst bcc(MOp::BCC);
      bcc.add(MOperand::makeCond(backend::Cond::EQ))
          .add(MOperand::makeBlock(flipBlocks[k]));
      pre->append(fi(std::move(bcc)));
    }
    emitBranch(pre, post);  // defensive fallback; setupFI always dispatches

    // FI_k: target-specific bit flip (mask is in r1).
    for (std::size_t k = 0; k < operands.size(); ++k) {
      emitFlip(flipBlocks[k], operands[k]);
      emitBranch(flipBlocks[k], post);
    }

    // PostFI: restore and resume.
    post->append(fi(MachineInst(MOp::POPF)));
    emitPop(post, MOp::POP, backend::gpr(1));
    emitPop(post, MOp::POP, backend::gpr(0));
    emitBranch(post, cont);
  }

  void emitPush(MachineBasicBlock* bb, MOp op, Reg r) {
    MachineInst inst(op);
    inst.add(MOperand::makeReg(r));
    bb->append(fi(std::move(inst)));
  }
  void emitPop(MachineBasicBlock* bb, MOp op, Reg r) {
    MachineInst inst(op);
    inst.add(MOperand::makeReg(r));
    bb->append(fi(std::move(inst)));
  }
  void emitBranch(MachineBasicBlock* bb, MachineBasicBlock* to) {
    MachineInst b(MOp::B);
    b.add(MOperand::makeBlock(to));
    bb->append(fi(std::move(b)));
  }

  /// Loads the saved word at [sp + off], XORs it with the mask in r1 and
  /// stores it back, using r0 as scratch (dead after dispatch).
  void flipSavedSlot(MachineBasicBlock* bb, std::int64_t off) {
    MachineInst load(MOp::LDR);
    load.add(MOperand::makeReg(backend::gpr(0)))
        .add(MOperand::makeReg(backend::spReg()))
        .add(MOperand::makeImm(off));
    bb->append(fi(std::move(load)));
    emitXor(bb, backend::gpr(0));
    MachineInst store(MOp::STR);
    store.add(MOperand::makeReg(backend::gpr(0)))
        .add(MOperand::makeReg(backend::spReg()))
        .add(MOperand::makeImm(off));
    bb->append(fi(std::move(store)));
  }

  /// XOR reg, reg, r1 (the mask register).
  void emitXor(MachineBasicBlock* bb, Reg r) {
    MachineInst x(MOp::XOR);
    x.add(MOperand::makeReg(r))
        .add(MOperand::makeReg(r))
        .add(MOperand::makeReg(backend::gpr(1)));
    bb->append(fi(std::move(x)));
  }

  void emitFlip(MachineBasicBlock* bb, const FiOperand& operand) {
    switch (operand.kind) {
      case FiOperand::Kind::GprDest: {
        const std::uint32_t idx = operand.reg.index;
        if (idx == 0) {
          flipSavedSlot(bb, kSavedR0Off);   // live r0 is on the stack
        } else if (idx == 1) {
          flipSavedSlot(bb, kSavedR1Off);   // live r1 is on the stack
        } else {
          emitXor(bb, operand.reg);
        }
        break;
      }
      case FiOperand::Kind::FprDest: {
        // Target-specific FP flip: move bits to r0, XOR, move back.
        MachineInst toInt(MOp::IBITF);
        toInt.add(MOperand::makeReg(backend::gpr(0)))
            .add(MOperand::makeReg(operand.reg));
        bb->append(fi(std::move(toInt)));
        emitXor(bb, backend::gpr(0));
        MachineInst toFp(MOp::FBITI);
        toFp.add(MOperand::makeReg(operand.reg))
            .add(MOperand::makeReg(backend::gpr(0)));
        bb->append(fi(std::move(toFp)));
        break;
      }
      case FiOperand::Kind::SP:
        // Flip the live stack pointer: the restore sequence then operates on
        // the corrupted sp, exactly as a real sp fault would unfold.
        emitXor(bb, backend::spReg());
        break;
      case FiOperand::Kind::Flags:
        flipSavedSlot(bb, kSavedFlagsOff);  // POPF reloads the flipped value
        break;
    }
  }

  MachineFunction& fn_;
  const FiConfig& config_;
  FiSiteTable& sites_;
};

}  // namespace

RefineInstrumentation applyRefinePass(backend::MachineModule& module,
                                      const FiConfig& config) {
  RefineInstrumentation result;
  if (!config.enabled) return result;
  for (const auto& fn : module.functions()) {
    if (!config.matchesFunction(fn->name())) continue;
    FunctionInstrumenter instr(*fn, config, result.sites);
    result.staticSites += instr.run();
  }
  return result;
}

RefineCompileResult compileWithRefine(const ir::Module& module,
                                      const FiConfig& config) {
  RefineCompileResult result;
  auto codegen = backend::compileBackend(
      module, [&](backend::MachineModule& mm) {
        RefineInstrumentation inst = applyRefinePass(mm, config);
        result.sites = std::move(inst.sites);
        result.staticSites = inst.staticSites;
      });
  result.program = std::move(codegen.program);
  return result;
}

}  // namespace refine::fi
