// Multi-bit fault-mask generation shared by every injector.
//
// The paper's fault model flips exactly one uniformly drawn bit of one
// output operand. The scenario library generalizes this to k-bit faults —
// either k *adjacent* bits (a burst, the classic multi-bit upset pattern)
// or k *independent* uniformly drawn bits — while keeping the k = 1 case
// bit-identical to the original single-flip draw (same RNG consumption,
// same chosen bit), so every published single-bit campaign reproduces
// unchanged. All three injectors (REFINE's setupFI, PINFI's hook, LLFI's
// host-side mask poke) draw through this one function, so a given spec
// describes the same fault shape no matter which technique applies it.
#pragma once

#include <cstdint>

namespace refine {
class Rng;
}

namespace refine::fi {

/// How the k flipped bits of a multi-bit fault are placed in the operand.
enum class BitMode : std::uint8_t {
  Adjacent,     // one uniformly placed run of k contiguous bits (burst)
  Independent,  // k distinct uniformly drawn bits (scattered upset)
};

const char* bitModeName(BitMode m) noexcept;

/// Bit granularity of one injected fault. `bits` is clamped to the operand
/// width at draw time (e.g. the 4-bit flags operand under bits=8 flips all
/// four of its bits).
struct BitFlip {
  unsigned bits = 1;
  BitMode mode = BitMode::Adjacent;
  friend bool operator==(const BitFlip&, const BitFlip&) noexcept = default;
};

/// Draws the XOR mask for one fault on an operand `operandBits` (1..64)
/// wide, consuming `rng` deterministically. With flip.bits == 1 this is
/// exactly the legacy draw: one nextBelow(operandBits) call, mask = 1 <<
/// bit — the invariant that keeps pre-spec campaign results bit-identical.
std::uint64_t drawFaultMask(Rng& rng, unsigned operandBits,
                            const BitFlip& flip);

}  // namespace refine::fi
