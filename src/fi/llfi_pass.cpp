#include "fi/llfi_pass.h"

#include <unordered_set>

#include "ir/builder.h"
#include "ir/layout.h"
#include "ir/verifier.h"

namespace refine::fi {

namespace {

using ir::BasicBlock;
using ir::Function;
using ir::Instruction;
using ir::IRBuilder;
using ir::Module;
using ir::Opcode;
using ir::Type;

/// True when `inst` is an LLFI injection target under `config` — a
/// value-producing computation visible at IR level.
bool isLlfiTarget(const Instruction& inst, const FiConfig& config) {
  if (!inst.producesValue()) return false;
  const Opcode op = inst.opcode();
  // Never: control, memory addresses, stack slots, phis (no insertion point
  // before other phis), and pointer-typed values (no integer bit flip).
  switch (op) {
    case Opcode::Phi:
    case Opcode::Alloca:
    case Opcode::Gep:
      return false;
    default:
      break;
  }
  if (inst.type() == Type::Ptr) return false;

  const bool isArith = ir::isIntBinary(op) || ir::isFloatBinary(op) ||
                       op == Opcode::FAbs || op == Opcode::FSqrt ||
                       op == Opcode::ICmp || op == Opcode::FCmp ||
                       op == Opcode::Select || op == Opcode::ZExt ||
                       op == Opcode::SIToFP || op == Opcode::FPToSI ||
                       op == Opcode::BitcastI2F || op == Opcode::BitcastF2I;
  const bool isMem = op == Opcode::Load;
  const bool isCall = op == Opcode::Call;

  switch (config.instrs) {
    case InstrSel::Stack:
      return false;  // stack instructions do not exist at IR level
    case InstrSel::Arith:
      return isArith;
    case InstrSel::Mem:
      return isMem;
    case InstrSel::FP:
      // The IR-level analogue of "writes an FP register": any visible
      // F64-valued computation (arith, loads, calls alike).
      return (isArith || isMem || isCall) && inst.type() == Type::F64;
    case InstrSel::All:
      return isArith || isMem || isCall;
  }
  return false;
}

/// Builds the guest runtime: control globals and one inject function per
/// value type. Returns the inject functions keyed by type.
struct GuestRuntime {
  ir::GlobalVar* counter = nullptr;
  ir::GlobalVar* target = nullptr;
  ir::GlobalVar* mask = nullptr;
  Function* injectI64 = nullptr;
  Function* injectF64 = nullptr;
  Function* injectI1 = nullptr;

  Function* forType(Type t) const {
    switch (t) {
      case Type::I64: return injectI64;
      case Type::F64: return injectF64;
      case Type::I1: return injectI1;
      default: RF_UNREACHABLE("no LLFI inject function for this type");
    }
  }
};

GuestRuntime buildGuestRuntime(Module& m) {
  GuestRuntime rt;
  rt.counter = m.addGlobal("__llfi_counter", Type::I64, 1);
  rt.target = m.addGlobal("__llfi_target", Type::I64, 1);
  rt.mask = m.addGlobal("__llfi_mask", Type::I64, 1);

  auto buildInject = [&](const std::string& name, Type valueType) {
    Function* f = m.addFunction(name, valueType, ir::FunctionKind::Defined);
    f->addParam(Type::I64, "id");
    ir::Argument* val = f->addParam(valueType, "val");
    BasicBlock* entry = f->addBlock("entry");
    BasicBlock* flip = f->addBlock("flip");
    BasicBlock* out = f->addBlock("out");
    IRBuilder b(m);
    b.setInsertPoint(entry);
    ir::Value* c = b.createLoad(Type::I64, rt.counter);
    ir::Value* c1 = b.createBinary(Opcode::Add, c, m.constI64(1));
    b.createStore(c1, rt.counter);
    ir::Value* t = b.createLoad(Type::I64, rt.target);
    ir::Value* hit = b.createICmp(ir::ICmpPred::EQ, c1, t);
    b.createCondBr(hit, flip, out);

    b.setInsertPoint(flip);
    ir::Value* flipped = nullptr;
    if (valueType == Type::I64) {
      ir::Value* mask = b.createLoad(Type::I64, rt.mask);
      flipped = b.createBinary(Opcode::Xor, val, mask);
    } else if (valueType == Type::F64) {
      ir::Value* mask = b.createLoad(Type::I64, rt.mask);
      ir::Value* bits = b.createBitcastF2I(val);
      ir::Value* xored = b.createBinary(Opcode::Xor, bits, mask);
      flipped = b.createBitcastI2F(xored);
    } else {  // i1: the single bit always flips, whatever the mask
      flipped = b.createSelect(val, m.constI1(false), m.constI1(true));
    }
    b.createBr(out);

    b.setInsertPoint(out);
    Instruction* phi = b.createPhi(valueType);
    phi->addPhiIncoming(val, entry);
    phi->addPhiIncoming(flipped, flip);
    b.createRet(phi);
    return f;
  };

  rt.injectI64 = buildInject("__llfi_inject_i64", Type::I64);
  rt.injectF64 = buildInject("__llfi_inject_f64", Type::F64);
  rt.injectI1 = buildInject("__llfi_inject_i1", Type::I1);
  return rt;
}

}  // namespace

LlfiInstrumentation applyLlfiPass(Module& module, const FiConfig& config) {
  LlfiInstrumentation result;
  if (!config.enabled) return result;
  const GuestRuntime rt = buildGuestRuntime(module);
  const std::unordered_set<const Function*> runtimeFns = {
      rt.injectI64, rt.injectF64, rt.injectI1};

  for (const auto& fn : module.functions()) {
    if (fn->isExternal()) continue;
    if (runtimeFns.contains(fn.get())) continue;
    if (!config.matchesFunction(fn->name())) continue;
    for (const auto& bb : fn->blocks()) {
      for (std::size_t i = 0; i < bb->size(); ++i) {
        Instruction* target = bb->instructions()[i].get();
        if (!isLlfiTarget(*target, config)) continue;
        // %fi = call @__llfi_inject_<ty>(i64 id, ty %target)
        auto call = std::make_unique<Instruction>(Opcode::Call, target->type());
        call->setCallee(rt.forType(target->type()));
        call->addOperand(module.constI64(
            static_cast<std::int64_t>(result.staticTargets)));
        call->addOperand(target);
        Instruction* callPtr = bb->insertAt(i + 1, std::move(call));
        // Redirect every other use of the original value to the call.
        for (const auto& otherBb : fn->blocks()) {
          for (const auto& user : otherBb->instructions()) {
            if (user.get() == callPtr) continue;
            user->replaceUsesOf(target, callPtr);
          }
        }
        ++result.staticTargets;
        ++i;  // skip the call we just inserted
      }
    }
  }

  ir::verifyOrThrow(module);

  // Control-global addresses in the final data layout (no globals are added
  // after this pass, so the layout is final).
  ir::DataLayout layout(module);
  result.counterAddr = layout.addressOf(rt.counter);
  result.targetAddr = layout.addressOf(rt.target);
  result.maskAddr = layout.addressOf(rt.mask);
  return result;
}

}  // namespace refine::fi
