#include "fi/pinfi.h"

#include <bit>

namespace refine::fi {

Pinfi::Pinfi(const backend::Program& program, const FiConfig& config)
    : program_(program), decoded_(program), config_(config) {
  isTarget_.assign(program.code.size(), 0);
  for (std::size_t i = 0; i < program.code.size(); ++i) {
    if (!isFiTarget(program.code[i], config)) continue;
    if (!config.matchesFunction(program.functionAt(i))) continue;
    isTarget_[i] = 1;
    ++staticTargets_;
  }
}

Pinfi::RunResult Pinfi::profile(std::uint64_t budget,
                                vm::SnapshotChain* snapshots) const {
  vm::Machine machine(program_, decoded_);
  std::uint64_t count = 0;
  if (snapshots == nullptr) {
    machine.setHook([&](std::uint64_t pc, vm::Machine&) {
      count += isTarget_[pc];
    });
  } else {
    machine.setHook([&](std::uint64_t pc, vm::Machine& m) {
      count += isTarget_[pc];
      if (snapshots->due(m)) snapshots->capture(m, count);
    });
  }
  RunResult result;
  result.exec = machine.run(budget);
  result.dynamicTargets = count;
  return result;
}

Pinfi::RunResult Pinfi::inject(std::uint64_t targetIndex, std::uint64_t seed,
                               std::uint64_t budget,
                               const vm::SnapshotChain* snapshots,
                               std::size_t outputReserve) const {
  RF_CHECK(targetIndex > 0, "dynamic target index is 1-based");
  vm::Machine machine(program_, decoded_);
  RunResult result;
  std::uint64_t count = 0;
  Rng rng(seed);
  machine.setHook([&, targetIndex](std::uint64_t pc, vm::Machine& m) {
    if (isTarget_[pc] == 0) return;
    if (++count != targetIndex) return;
    // Inject: uniform output operand (under the config's operand filter),
    // then the config's mask shape — then detach.
    const auto operands = fiOutputOperands(program_.code[pc], config_);
    const auto opIndex = static_cast<std::uint32_t>(rng.nextBelow(operands.size()));
    const FiOperand& operand = operands[opIndex];
    const std::uint64_t mask = drawFaultMask(rng, operand.bits, config_.flip);
    switch (operand.kind) {
      case FiOperand::Kind::GprDest:
      case FiOperand::Kind::SP:
        m.gpr(operand.reg.index) ^= mask;
        break;
      case FiOperand::Kind::FprDest:
        m.fprBits(operand.reg.index) ^= mask;
        break;
      case FiOperand::Kind::Flags:
        m.flags() ^= static_cast<std::uint8_t>(mask);
        break;
    }
    FaultRecord record;
    record.dynamicIndex = count;
    record.siteId = pc;
    record.function = program_.functionAt(pc);
    record.operandIndex = opIndex;
    record.operandKind = operand.kind;
    record.bit = static_cast<unsigned>(std::countr_zero(mask));
    record.mask = mask;
    result.fault = std::move(record);
    m.clearHook();  // PINFI detach optimization
  });

  // Trial fast-forward: resume from the latest profiling snapshot taken
  // before the trigger; the deterministic prefix is skipped and the hook's
  // dynamic-target counter starts at the snapshot's count.
  const vm::Snapshot* snap =
      snapshots != nullptr ? snapshots->findBefore(targetIndex, budget) : nullptr;
  if (snap != nullptr) {
    count = snap->dynamicCount;
    // Reserve before restore: the assignment of the snapshot's prefix
    // output then lands in a buffer already sized for the full run.
    machine.reserveOutput(outputReserve);
    machine.restore(*snap);
    result.fastForwardedInstrs = snap->instrCount;
    result.exec = machine.resume(budget);
  } else {
    machine.reserveOutput(outputReserve);
    result.exec = machine.run(budget);
  }
  result.dynamicTargets = count;
  return result;
}

}  // namespace refine::fi
