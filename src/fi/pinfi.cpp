#include "fi/pinfi.h"

#include <bit>

namespace refine::fi {

Pinfi::Pinfi(const backend::Program& program, const FiConfig& config)
    : program_(program), decoded_(program), config_(config) {
  isTarget_.assign(program.code.size(), 0);
  for (std::size_t i = 0; i < program.code.size(); ++i) {
    if (!isFiTarget(program.code[i], config)) continue;
    if (!config.matchesFunction(program.functionAt(i))) continue;
    isTarget_[i] = 1;
    ++staticTargets_;
  }
}

Pinfi::RunResult Pinfi::profile(std::uint64_t budget,
                                vm::SnapshotChain* snapshots) const {
  vm::Machine machine(program_, decoded_);
  std::uint64_t count = 0;
  if (snapshots == nullptr) {
    machine.setHook([&](std::uint64_t pc, vm::Machine&) {
      count += isTarget_[pc];
    });
  } else {
    machine.setHook([&](std::uint64_t pc, vm::Machine& m) {
      count += isTarget_[pc];
      if (snapshots->due(m)) snapshots->capture(m, count);
    });
  }
  RunResult result;
  result.exec = machine.run(budget);
  result.dynamicTargets = count;
  return result;
}

namespace {

/// Per-trial hook state, reached through ONE captured pointer so the
/// injection hook fits std::function's inline (small-buffer) storage — the
/// per-trial hook assignment must not heap-allocate on the campaign hot
/// path.
struct InjectCtx {
  const backend::Program* program;
  const FiConfig* config;
  const std::uint8_t* isTarget;
  std::optional<FaultRecord>* fault;
  std::uint64_t count;
  std::uint64_t target;
  Rng rng;
};

void injectHook(InjectCtx& ctx, std::uint64_t pc, vm::Machine& m) {
  if (ctx.isTarget[pc] == 0) return;
  if (++ctx.count != ctx.target) return;
  // Inject: uniform output operand (under the config's operand filter),
  // then the config's mask shape — then detach. The fixed-capacity operand
  // set keeps the triggered path allocation-free.
  const auto operands = fiOutputOperandSet(ctx.program->code[pc], *ctx.config);
  const auto opIndex =
      static_cast<std::uint32_t>(ctx.rng.nextBelow(operands.size()));
  const FiOperand& operand = operands[opIndex];
  const std::uint64_t mask = drawFaultMask(ctx.rng, operand.bits, ctx.config->flip);
  switch (operand.kind) {
    case FiOperand::Kind::GprDest:
    case FiOperand::Kind::SP:
      m.gpr(operand.reg.index) ^= mask;
      break;
    case FiOperand::Kind::FprDest:
      m.fprBits(operand.reg.index) ^= mask;
      break;
    case FiOperand::Kind::Flags:
      m.flags() ^= static_cast<std::uint8_t>(mask);
      break;
  }
  // Fill the caller's fault slot in place. Allocation-free for function
  // names within the small-string optimization (the realistic case; the
  // alloc-guard test pins it).
  if (!ctx.fault->has_value()) ctx.fault->emplace();
  FaultRecord& record = **ctx.fault;
  record.dynamicIndex = ctx.count;
  record.siteId = pc;
  record.function = ctx.program->functionAt(pc);
  record.operandIndex = opIndex;
  record.operandKind = operand.kind;
  record.bit = static_cast<unsigned>(std::countr_zero(mask));
  record.mask = mask;
  m.clearHook();  // PINFI detach optimization
}

}  // namespace

Pinfi::InjectStats Pinfi::inject(std::uint64_t targetIndex, std::uint64_t seed,
                                 std::uint64_t budget,
                                 const vm::SnapshotChain* snapshots,
                                 std::size_t outputReserve,
                                 vm::Machine& machine, vm::ExecResult& exec,
                                 std::optional<FaultRecord>& fault) const {
  RF_CHECK(targetIndex > 0, "dynamic target index is 1-based");
  // A trial that never reaches its trigger (trap/timeout first) must report
  // no fault.
  fault.reset();
  InjectStats stats;
  // Trial fast-forward: resume from the latest profiling snapshot taken
  // before the trigger; the deterministic prefix is skipped and the hook's
  // dynamic-target counter starts at the snapshot's count.
  const vm::Snapshot* snap =
      snapshots != nullptr ? snapshots->findBefore(targetIndex, budget) : nullptr;
  stats.restoredBytes = machine.beginTrial(snap, outputReserve);

  InjectCtx ctx{&program_,
                &config_,
                isTarget_.data(),
                &fault,
                snap != nullptr ? snap->dynamicCount : 0,
                targetIndex,
                Rng(seed)};
  machine.setHook([&ctx](std::uint64_t pc, vm::Machine& m) {
    injectHook(ctx, pc, m);
  });

  if (snap != nullptr) {
    stats.fastForwardedInstrs = snap->instrCount;
    exec = machine.resume(budget);
  } else {
    exec = machine.run(budget);
  }
  stats.dynamicTargets = ctx.count;
  return stats;
}

Pinfi::RunResult Pinfi::inject(std::uint64_t targetIndex, std::uint64_t seed,
                               std::uint64_t budget,
                               const vm::SnapshotChain* snapshots,
                               std::size_t outputReserve) const {
  vm::Machine machine(program_, decoded_);
  RunResult result;
  const InjectStats stats =
      inject(targetIndex, seed, budget, snapshots, outputReserve, machine,
             result.exec, result.fault);
  result.dynamicTargets = stats.dynamicTargets;
  result.fastForwardedInstrs = stats.fastForwardedInstrs;
  return result;
}

}  // namespace refine::fi
