#include "fi/config.h"

#include "support/check.h"
#include "support/strings.h"

namespace refine::fi {

const char* instrSelName(InstrSel s) noexcept {
  switch (s) {
    case InstrSel::Stack: return "stack";
    case InstrSel::Arith: return "arithm";
    case InstrSel::Mem: return "mem";
    case InstrSel::FP: return "fp";
    case InstrSel::All: return "all";
  }
  return "?";
}

bool FiConfig::matchesFunction(std::string_view name) const {
  for (const auto& pattern : funcPatterns) {
    if (globMatch(pattern, name)) return true;
  }
  return false;
}

FiConfig FiConfig::allOn() {
  FiConfig config;
  config.enabled = true;
  return config;
}

FiConfig FiConfig::parseFlags(std::string_view flags) {
  FiConfig config;
  for (const auto& rawToken : split(flags, ' ')) {
    const std::string token{trim(rawToken)};
    if (token.empty() || token == "-mllvm") continue;  // driver noise
    const auto eq = token.find('=');
    RF_CHECK(eq != std::string::npos, "malformed FI flag (expected key=value): " + token);
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "-fi") {
      RF_CHECK(value == "true" || value == "false", "-fi expects true|false");
      config.enabled = value == "true";
    } else if (key == "-fi-funcs") {
      config.funcPatterns.clear();
      for (const auto& f : split(value, ',')) {
        const auto trimmed = trim(f);
        if (!trimmed.empty()) config.funcPatterns.emplace_back(trimmed);
      }
      RF_CHECK(!config.funcPatterns.empty(), "-fi-funcs needs at least one pattern");
    } else if (key == "-fi-instrs") {
      if (value == "stack") {
        config.instrs = InstrSel::Stack;
      } else if (value == "arithm") {
        config.instrs = InstrSel::Arith;
      } else if (value == "mem") {
        config.instrs = InstrSel::Mem;
      } else if (value == "fp") {
        config.instrs = InstrSel::FP;
      } else if (value == "all") {
        config.instrs = InstrSel::All;
      } else {
        RF_CHECK(false,
                 "-fi-instrs expects stack|arithm|mem|fp|all, got " + value);
      }
    } else if (key == "-fi-bits") {
      const auto bits = parseU64(value);
      RF_CHECK(bits && *bits >= 1 && *bits <= 64,
               "-fi-bits expects an integer in 1..64, got " + value);
      config.flip.bits = static_cast<unsigned>(*bits);
    } else if (key == "-fi-bit-mode") {
      if (value == "adjacent") {
        config.flip.mode = BitMode::Adjacent;
      } else if (value == "independent") {
        config.flip.mode = BitMode::Independent;
      } else {
        RF_CHECK(false,
                 "-fi-bit-mode expects adjacent|independent, got " + value);
      }
    } else {
      RF_CHECK(false, "unknown FI flag: " + key);
    }
  }
  return config;
}

}  // namespace refine::fi
