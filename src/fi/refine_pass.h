// REFINE: fault injection as a compiler *backend* pass (paper Sec. 4).
//
// Runs on the final machine instructions — after instruction selection,
// peephole optimization, register allocation, pseudo expansion and frame
// lowering, right before code emission (the hook point in
// backend::compileBackend). Consequences, exactly as the paper argues:
//
//  * Full visibility: prologue/epilogue pushes, spill loads/stores, stack
//    adjustments and flag-writing ALU instructions are all injectable —
//    none of them exist at IR level (Listing 1).
//  * Zero code-generation interference: the application's instructions are
//    exactly those of the uninstrumented binary; only control flow around
//    them is augmented (Sec. 4.2.2).
//
// Per instrumented instruction the pass inserts the basic-block structure of
// Fig. 2:
//
//   [.. target instruction]
//   FICHECK site, .fi.pre.N      ; PreFI fast path: count-and-compare +
//   [continuation block ..]      ;   conditional branch, flag-preserving
//
// and, in a cold region at the end of the function:
//
//   .fi.pre.N:  push r0; push r1; pushf      ; PreFI: save clobbered state
//               SETUPFI site                 ; SetupFI: r0 = operand, r1 = mask
//               cmpri r0, k; bcc eq, .fi.opN.k   ; dispatch to FI_k
//   .fi.opN.k:  <target-specific bit flip: XOR for GPRs, IBITF/XOR/FBITI for
//                FPRs, saved-slot XOR for r0/r1/flags, sp XOR for the stack
//                pointer>
//   .fi.post.N: popf; pop r1; pop r0; b continuation   ; PostFI: restore
//
// The FICHECK fast path costs one instruction dispatch per instrumented
// instruction plus the host-side counter — modelling the few-cycle
// call-test-return of the paper's PreFI (see DESIGN.md).
#pragma once

#include "backend/compile.h"
#include "backend/mir.h"
#include "fi/config.h"
#include "fi/sites.h"

namespace refine::fi {

struct RefineInstrumentation {
  FiSiteTable sites;
  std::uint64_t staticSites = 0;
};

/// Instruments every matching instruction of `module` in place.
RefineInstrumentation applyRefinePass(backend::MachineModule& module,
                                      const FiConfig& config);

/// Convenience driver: full backend compilation with the REFINE pass
/// attached at the pre-emission hook.
struct RefineCompileResult {
  backend::Program program;
  FiSiteTable sites;
  std::uint64_t staticSites = 0;
};
RefineCompileResult compileWithRefine(const ir::Module& module,
                                      const FiConfig& config);

}  // namespace refine::fi
