#include "fi/library.h"

#include <bit>

#include "support/strings.h"

namespace refine::fi {

std::string formatFaultRecord(const FaultRecord& record) {
  return strf(
      "fault: dyn=%llu site=%llu func=%s operand=%u kind=%s bit=%u mask=0x%llx",
      static_cast<unsigned long long>(record.dynamicIndex),
      static_cast<unsigned long long>(record.siteId), record.function.c_str(),
      record.operandIndex, fiOperandKindName(record.operandKind), record.bit,
      static_cast<unsigned long long>(record.mask));
}

FaultInjectionLibrary::FaultInjectionLibrary(const FiSiteTable* sites,
                                             FiMode mode,
                                             std::uint64_t targetIndex,
                                             std::uint64_t seed, BitFlip flip)
    : sites_(sites), mode_(mode), rng_(seed), flip_(flip) {
  RF_CHECK(sites_ != nullptr, "FI library needs a site table");
  if (mode == FiMode::Inject) {
    RF_CHECK(targetIndex > 0, "injection target index is 1-based");
    // Arms the VM's inlined PreFI fast path; profile mode leaves the
    // trigger at "never" and only accumulates fiCount.
    fiTrigger = targetIndex;
  }
}

FaultInjectionLibrary FaultInjectionLibrary::profiling(const FiSiteTable* sites) {
  return FaultInjectionLibrary(sites, FiMode::Profile, 0, 0, {});
}

FaultInjectionLibrary FaultInjectionLibrary::injecting(const FiSiteTable* sites,
                                                       std::uint64_t targetIndex,
                                                       std::uint64_t seed,
                                                       BitFlip flip) {
  return FaultInjectionLibrary(sites, FiMode::Inject, targetIndex, seed, flip);
}

void FaultInjectionLibrary::fastForwardTo(std::uint64_t executedTargets) {
  RF_CHECK(mode_ == FiMode::Inject, "fastForwardTo is for injection runs");
  RF_CHECK(fiCount == 0 && !fault_.has_value(),
           "fastForwardTo before any target executed");
  RF_CHECK(executedTargets < fiTrigger,
           "fast-forward point must precede the injection trigger");
  fiCount = executedTargets;
}

bool FaultInjectionLibrary::onFiTrigger(std::uint64_t siteId) {
  (void)siteId;
  RF_CHECK(mode_ == FiMode::Inject,
           "trigger fired on a profile-mode library");
  // The trigger count is reached exactly once (fiCount only grows); the
  // fault guard mirrors the pre-inline selInstr defensively.
  return !fault_.has_value();
}

std::pair<std::uint32_t, std::uint64_t> FaultInjectionLibrary::setupFI(
    std::uint64_t siteId) {
  RF_CHECK(mode_ == FiMode::Inject, "setupFI called while profiling");
  if (fault_.has_value()) {
    // Fault-corrupted control flow can jump straight into a PreFI save block
    // and re-execute SETUPFI without a triggering FICHECK. Answer with the
    // already-chosen fault parameters (single-fault model: no second record,
    // no fresh RNG draw) so the wild execution proceeds deterministically
    // instead of aborting the whole campaign.
    return {fault_->operandIndex, fault_->mask};
  }
  const FiSite& site = sites_->site(siteId);
  RF_CHECK(!site.operands.empty(), "FI site with no operands");

  // Fault model (paper Sec. 3.1): uniform over output operands, then a mask
  // over the bits of the chosen operand — a single uniform bit under the
  // paper's model, k bits under a multi-bit spec.
  const auto operandIndex =
      static_cast<std::uint32_t>(rng_.nextBelow(site.operands.size()));
  const FiOperand& operand = site.operands[operandIndex];
  const std::uint64_t mask = drawFaultMask(rng_, operand.bits, flip_);

  FaultRecord record;
  record.dynamicIndex = fiCount;
  record.siteId = siteId;
  record.function = site.function;
  record.operandIndex = operandIndex;
  record.operandKind = operand.kind;
  record.bit = static_cast<unsigned>(std::countr_zero(mask));
  record.mask = mask;
  fault_ = std::move(record);
  return {operandIndex, mask};
}

void FaultInjectionLibrary::writeCountFile(const std::string& path) const {
  writeFile(path, strf("%llu\n", static_cast<unsigned long long>(fiCount)));
}

std::uint64_t FaultInjectionLibrary::readCountFile(const std::string& path) {
  const std::string content = readFile(path);
  return std::strtoull(content.c_str(), nullptr, 10);
}

}  // namespace refine::fi
