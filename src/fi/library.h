// The fault-injection control library (paper Sec. 4.2.4 and Fig. 3).
//
// REFINE-instrumented binaries call into this library at runtime:
//   FICHECK     — after every instrumented instruction; counts dynamic
//                 target instructions and decides whether to trigger. The
//                 count-and-compare is the paper's few-cycle PreFI fast
//                 path and is inlined by the VM (vm::FiRuntime::fiCount /
//                 fiTrigger); the library is called (onFiTrigger) only at
//                 the trigger.
//   setupFI()   — once, at the trigger: picks the output operand and bit
//                 (uniformly, per the fault model) and returns the XOR mask.
//
// Two modes mirror the paper's workflow:
//   Profile — count dynamic targets, never trigger; the count and the golden
//             output feed later injection runs.
//   Inject  — trigger at a pre-drawn dynamic target index and log the fault.
//
// Counts can be persisted to and re-read from files, matching the paper's
// profiling artifacts; campaigns keep them in memory for speed.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "fi/sites.h"
#include "support/rng.h"
#include "vm/machine.h"

namespace refine::fi {

enum class FiMode : std::uint8_t { Profile, Inject };

/// Everything known about one injected fault (the paper's fault log entry).
struct FaultRecord {
  std::uint64_t dynamicIndex = 0;   // which dynamic target triggered (1-based)
  std::uint64_t siteId = 0;         // static site id
  std::string function;             // enclosing function
  std::uint32_t operandIndex = 0;   // which output operand
  FiOperand::Kind operandKind = FiOperand::Kind::GprDest;
  unsigned bit = 0;                 // lowest flipped bit (the bit, under
                                    // the single-bit model)
  std::uint64_t mask = 0;           // XOR mask applied (may flip k bits)
};

/// Renders a fault record as a single log line.
std::string formatFaultRecord(const FaultRecord& record);

class FaultInjectionLibrary final : public vm::FiRuntime {
 public:
  /// Profile-mode library: counts and never triggers.
  static FaultInjectionLibrary profiling(const FiSiteTable* sites);

  /// Inject-mode library triggering at dynamic target `targetIndex`
  /// (1-based); operand and XOR mask are drawn from `seed` at trigger time.
  /// `flip` selects the bit granularity (default: the paper's single-bit
  /// model); multi-bit masks are drawn via fi::drawFaultMask so the flip
  /// shape matches PINFI's and LLFI's for the same spec.
  static FaultInjectionLibrary injecting(const FiSiteTable* sites,
                                         std::uint64_t targetIndex,
                                         std::uint64_t seed,
                                         BitFlip flip = {});

  /// Trial fast-forward (snapshot resume): primes the dynamic-target counter
  /// as if `executedTargets` target instructions had already run, so a
  /// machine restored from a snapshot taken at that point triggers at the
  /// same dynamic index as a cold-start run. Inject mode only; must stay
  /// strictly below the trigger index.
  void fastForwardTo(std::uint64_t executedTargets);

  // -- vm::FiRuntime ------------------------------------------------------
  bool onFiTrigger(std::uint64_t siteId) override;
  std::pair<std::uint32_t, std::uint64_t> setupFI(std::uint64_t siteId) override;

  // -- Results ---------------------------------------------------------------
  std::uint64_t dynamicCount() const noexcept { return fiCount; }
  bool triggered() const noexcept { return fault_.has_value(); }
  const std::optional<FaultRecord>& fault() const noexcept { return fault_; }

  // -- Persistence (paper Fig. 3a: the profiling destructor writes the
  //    dynamic instruction count to a file) ---------------------------------
  void writeCountFile(const std::string& path) const;
  static std::uint64_t readCountFile(const std::string& path);

 private:
  FaultInjectionLibrary(const FiSiteTable* sites, FiMode mode,
                        std::uint64_t targetIndex, std::uint64_t seed,
                        BitFlip flip);

  const FiSiteTable* sites_;
  FiMode mode_;
  Rng rng_;
  BitFlip flip_;
  std::optional<FaultRecord> fault_;
};

}  // namespace refine::fi
