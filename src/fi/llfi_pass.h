// LLFI-style IR-level fault injection (the paper's compiler-based baseline,
// Sec. 3.3 and 5.2).
//
// Replicates the mechanics of LLFI/KULFI/VULFI/FlipIt: after IR optimization
// but *before* the backend, every value-producing IR instruction of the
// selected classes gets a call
//
//     %fi = call @__llfi_inject_<ty>(i64 id, <ty> %value)
//
// appended after it, and all other uses of %value are rewritten to %fi. The
// injection runtime is synthesized as guest IR (globals + functions) and
// compiled into the binary, so — unlike REFINE's host-side library — its
// cost and its interference with code generation are part of the measured
// system, exactly as with the real LLFI:
//
//  * the calls clobber caller-saved registers, forcing long-lived values
//    into callee-saved registers or spill slots (paper Listing 2's register
//    spilling), and
//  * a call lands between every compare and its consumer, killing the
//    FCMP+FCSEL -> FMAX/FMIN peephole fusion (Listing 2's lost vmaxsd).
//
// Known-by-design limitations shared with real IR-level injectors:
//  * no access to stack management, prologue/epilogue or spill instructions
//    (-fi-instrs=stack selects nothing);
//  * faults flip bits of SSA values, never of condition flags or the stack
//    pointer.
//
// Trigger plumbing: the runtime counts executions in the guest global
// @__llfi_counter and triggers when it equals @__llfi_target, XORing the
// value with @__llfi_mask (a full mask rather than a bit index, so
// multi-bit fault models need no guest-side mask construction). The host
// seeds those globals before each run (the file-based transport of the
// paper's Fig. 3, minus the file) and reads the counter back after
// profiling runs.
#pragma once

#include <cstdint>

#include "fi/config.h"
#include "ir/ir.h"

namespace refine::fi {

struct LlfiInstrumentation {
  std::uint64_t staticTargets = 0;  // number of instrumented IR instructions
  // Addresses of the guest control globals (valid for the final binary).
  std::uint64_t counterAddr = 0;
  std::uint64_t targetAddr = 0;
  std::uint64_t maskAddr = 0;
};

/// Instruments `module` in place (run this after opt::optimize, before the
/// backend). The module is re-verified before returning.
LlfiInstrumentation applyLlfiPass(ir::Module& module, const FiConfig& config);

}  // namespace refine::fi
