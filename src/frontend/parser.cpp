#include "frontend/parser.h"

#include "support/check.h"
#include "support/strings.h"

namespace refine::fe {

namespace {

/// Binding powers for binary operators (precedence climbing).
int precedence(Tok t) {
  switch (t) {
    case Tok::Star: case Tok::Slash: case Tok::Percent: return 10;
    case Tok::Plus: case Tok::Minus: return 9;
    case Tok::Shl: case Tok::Shr: return 8;
    case Tok::Lt: case Tok::Le: case Tok::Gt: case Tok::Ge: return 7;
    case Tok::EqEq: case Tok::NotEq: return 6;
    case Tok::Amp: return 5;
    case Tok::Caret: return 4;
    case Tok::Pipe: return 3;
    case Tok::AmpAmp: return 2;
    case Tok::PipePipe: return 1;
    default: return 0;
  }
}

BinaryOp toBinaryOp(Tok t) {
  switch (t) {
    case Tok::Star: return BinaryOp::Mul;
    case Tok::Slash: return BinaryOp::Div;
    case Tok::Percent: return BinaryOp::Rem;
    case Tok::Plus: return BinaryOp::Add;
    case Tok::Minus: return BinaryOp::Sub;
    case Tok::Shl: return BinaryOp::Shl;
    case Tok::Shr: return BinaryOp::Shr;
    case Tok::Lt: return BinaryOp::Lt;
    case Tok::Le: return BinaryOp::Le;
    case Tok::Gt: return BinaryOp::Gt;
    case Tok::Ge: return BinaryOp::Ge;
    case Tok::EqEq: return BinaryOp::Eq;
    case Tok::NotEq: return BinaryOp::Ne;
    case Tok::Amp: return BinaryOp::BitAnd;
    case Tok::Caret: return BinaryOp::BitXor;
    case Tok::Pipe: return BinaryOp::BitOr;
    case Tok::AmpAmp: return BinaryOp::LogAnd;
    case Tok::PipePipe: return BinaryOp::LogOr;
    default: break;
  }
  return BinaryOp::Add;
}

class Parser {
 public:
  Parser(const std::vector<Token>& tokens, ParseResult& out)
      : tokens_(tokens), out_(out) {}

  void run() {
    while (!at(Tok::End)) {
      if (at(Tok::KwVar)) {
        parseGlobal();
      } else if (at(Tok::KwFn)) {
        parseFunction();
      } else {
        error(strf("expected 'var' or 'fn' at top level, got %s",
                   tokName(cur().kind)));
        advance();
      }
      if (!errorsBounded()) return;
    }
  }

 private:
  const Token& cur() const { return tokens_[pos_]; }
  const Token& peek() const {
    return tokens_[pos_ + 1 < tokens_.size() ? pos_ + 1 : pos_];
  }
  bool at(Tok t) const { return cur().kind == t; }
  void advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }
  SrcLoc loc() const { return {cur().line, cur().col}; }

  void error(const std::string& msg) {
    out_.errors.push_back(strf("%d:%d: %s", cur().line, cur().col, msg.c_str()));
  }
  bool errorsBounded() const { return out_.errors.size() < 30; }

  bool expect(Tok t, const char* context) {
    if (at(t)) {
      advance();
      return true;
    }
    error(strf("expected %s %s, got %s", tokName(t), context, tokName(cur().kind)));
    return false;
  }

  bool parseType(AstType& out) {
    if (at(Tok::KwI64)) { out = AstType::I64; advance(); return true; }
    if (at(Tok::KwF64)) { out = AstType::F64; advance(); return true; }
    if (at(Tok::KwVoid)) { out = AstType::Void; advance(); return true; }
    error(strf("expected a type, got %s", tokName(cur().kind)));
    return false;
  }

  // var name: type; | var name: type = lit; | var name: type[count];
  void parseGlobal() {
    GlobalDecl g;
    g.loc = loc();
    advance();  // var
    g.name = cur().text;
    if (!expect(Tok::Ident, "as global name")) return skipToSemicolon();
    if (!expect(Tok::Colon, "after global name")) return skipToSemicolon();
    if (!parseType(g.type)) return skipToSemicolon();
    if (g.type == AstType::Void) error("global cannot have type void");
    if (at(Tok::LBracket)) {
      advance();
      if (at(Tok::IntLit)) {
        g.arrayCount = cur().intValue;
        if (g.arrayCount <= 0) error("array size must be positive");
        advance();
      } else {
        error("expected array size literal");
      }
      expect(Tok::RBracket, "after array size");
    } else if (at(Tok::Assign)) {
      advance();
      g.hasInit = true;
      bool negative = false;
      if (at(Tok::Minus)) {
        negative = true;
        advance();
      }
      if (at(Tok::IntLit)) {
        g.intInit = negative ? -cur().intValue : cur().intValue;
        advance();
      } else if (at(Tok::FloatLit)) {
        g.floatInit = negative ? -cur().floatValue : cur().floatValue;
        advance();
      } else {
        error("global initializer must be a literal");
      }
    }
    expect(Tok::Semicolon, "after global declaration");
    out_.program.globals.push_back(std::move(g));
  }

  void skipToSemicolon() {
    while (!at(Tok::End) && !at(Tok::Semicolon)) advance();
    if (at(Tok::Semicolon)) advance();
  }

  void parseFunction() {
    auto fn = std::make_unique<FunctionDecl>();
    fn->loc = loc();
    advance();  // fn
    fn->name = cur().text;
    if (!expect(Tok::Ident, "as function name")) return;
    if (!expect(Tok::LParen, "after function name")) return;
    while (!at(Tok::RParen) && !at(Tok::End)) {
      ParamDecl p;
      p.loc = loc();
      p.name = cur().text;
      if (!expect(Tok::Ident, "as parameter name")) break;
      if (!expect(Tok::Colon, "after parameter name")) break;
      if (!parseType(p.type)) break;
      if (p.type == AstType::Void) error("parameter cannot be void");
      fn->params.push_back(std::move(p));
      if (at(Tok::Comma)) advance();
      else break;
    }
    expect(Tok::RParen, "after parameters");
    if (at(Tok::Arrow)) {
      advance();
      parseType(fn->returnType);
    } else {
      fn->returnType = AstType::Void;
    }
    if (!expect(Tok::LBrace, "to open function body")) return;
    fn->body = parseStmtList();
    expect(Tok::RBrace, "to close function body");
    out_.program.functions.push_back(std::move(fn));
  }

  std::vector<std::unique_ptr<Stmt>> parseStmtList() {
    std::vector<std::unique_ptr<Stmt>> stmts;
    while (!at(Tok::RBrace) && !at(Tok::End) && errorsBounded()) {
      auto s = parseStmt();
      if (s != nullptr) stmts.push_back(std::move(s));
    }
    return stmts;
  }

  std::unique_ptr<Stmt> makeStmt(StmtKind kind) {
    auto s = std::make_unique<Stmt>();
    s->kind = kind;
    s->loc = loc();
    return s;
  }

  std::unique_ptr<Stmt> parseStmt() {
    switch (cur().kind) {
      case Tok::KwVar: return parseVarDecl();
      case Tok::KwIf: return parseIf();
      case Tok::KwWhile: return parseWhile();
      case Tok::KwFor: return parseFor();
      case Tok::KwReturn: {
        auto s = makeStmt(StmtKind::Return);
        advance();
        if (!at(Tok::Semicolon)) s->expr0 = parseExpr();
        expect(Tok::Semicolon, "after return");
        return s;
      }
      case Tok::KwBreak: {
        auto s = makeStmt(StmtKind::Break);
        advance();
        expect(Tok::Semicolon, "after break");
        return s;
      }
      case Tok::KwContinue: {
        auto s = makeStmt(StmtKind::Continue);
        advance();
        expect(Tok::Semicolon, "after continue");
        return s;
      }
      case Tok::LBrace: {
        auto s = makeStmt(StmtKind::Block);
        advance();
        s->body = parseStmtList();
        expect(Tok::RBrace, "to close block");
        return s;
      }
      default:
        return parseSimpleStmt(/*requireSemicolon=*/true);
    }
  }

  std::unique_ptr<Stmt> parseVarDecl() {
    auto s = makeStmt(StmtKind::VarDecl);
    advance();  // var
    s->name = cur().text;
    if (!expect(Tok::Ident, "as variable name")) { skipToSemicolon(); return nullptr; }
    if (!expect(Tok::Colon, "after variable name")) { skipToSemicolon(); return nullptr; }
    if (!parseType(s->declType)) { skipToSemicolon(); return nullptr; }
    if (s->declType == AstType::Void) error("variable cannot have type void");
    if (at(Tok::LBracket)) {
      advance();
      if (at(Tok::IntLit)) {
        s->arrayCount = cur().intValue;
        if (s->arrayCount <= 0) error("array size must be positive");
        advance();
      } else {
        error("expected array size literal");
      }
      expect(Tok::RBracket, "after array size");
    } else if (at(Tok::Assign)) {
      advance();
      s->expr0 = parseExpr();
    }
    expect(Tok::Semicolon, "after variable declaration");
    return s;
  }

  // Assignment, indexed assignment, or expression statement.
  std::unique_ptr<Stmt> parseSimpleStmt(bool requireSemicolon) {
    if (at(Tok::Ident) && peek().kind == Tok::Assign) {
      auto s = makeStmt(StmtKind::Assign);
      s->name = cur().text;
      advance();  // ident
      advance();  // =
      s->expr0 = parseExpr();
      if (requireSemicolon) expect(Tok::Semicolon, "after assignment");
      return s;
    }
    if (at(Tok::Ident) && peek().kind == Tok::LBracket) {
      // Could be an indexed assignment or an expression (a[i] used rvalue).
      const std::size_t save = pos_;
      auto s = makeStmt(StmtKind::IndexAssign);
      s->name = cur().text;
      advance();  // ident
      advance();  // [
      s->expr0 = parseExpr();
      if (at(Tok::RBracket) && peek().kind == Tok::Assign) {
        advance();  // ]
        advance();  // =
        s->expr1 = parseExpr();
        if (requireSemicolon) expect(Tok::Semicolon, "after assignment");
        return s;
      }
      pos_ = save;  // rewind: it was an expression
    }
    auto s = makeStmt(StmtKind::ExprStmt);
    s->expr0 = parseExpr();
    if (requireSemicolon) expect(Tok::Semicolon, "after expression");
    return s;
  }

  std::unique_ptr<Stmt> parseIf() {
    auto s = makeStmt(StmtKind::If);
    advance();  // if
    expect(Tok::LParen, "after 'if'");
    s->expr0 = parseExpr();
    expect(Tok::RParen, "after condition");
    expect(Tok::LBrace, "to open if body");
    s->body = parseStmtList();
    expect(Tok::RBrace, "to close if body");
    if (at(Tok::KwElse)) {
      advance();
      if (at(Tok::KwIf)) {
        s->elseBody.push_back(parseIf());
      } else {
        expect(Tok::LBrace, "to open else body");
        s->elseBody = parseStmtList();
        expect(Tok::RBrace, "to close else body");
      }
    }
    return s;
  }

  std::unique_ptr<Stmt> parseWhile() {
    auto s = makeStmt(StmtKind::While);
    advance();  // while
    expect(Tok::LParen, "after 'while'");
    s->expr0 = parseExpr();
    expect(Tok::RParen, "after condition");
    expect(Tok::LBrace, "to open while body");
    s->body = parseStmtList();
    expect(Tok::RBrace, "to close while body");
    return s;
  }

  std::unique_ptr<Stmt> parseFor() {
    auto s = makeStmt(StmtKind::For);
    advance();  // for
    expect(Tok::LParen, "after 'for'");
    if (!at(Tok::Semicolon)) {
      if (at(Tok::KwVar)) {
        s->forInit = parseVarDecl();  // consumes its semicolon
      } else {
        s->forInit = parseSimpleStmt(/*requireSemicolon=*/false);
        expect(Tok::Semicolon, "after for-init");
      }
    } else {
      advance();
    }
    if (!at(Tok::Semicolon)) s->expr0 = parseExpr();
    expect(Tok::Semicolon, "after for-condition");
    if (!at(Tok::RParen)) s->forStep = parseSimpleStmt(/*requireSemicolon=*/false);
    expect(Tok::RParen, "after for-step");
    expect(Tok::LBrace, "to open for body");
    s->body = parseStmtList();
    expect(Tok::RBrace, "to close for body");
    return s;
  }

  std::unique_ptr<Expr> makeExpr(ExprKind kind) {
    auto e = std::make_unique<Expr>();
    e->kind = kind;
    e->loc = loc();
    return e;
  }

  std::unique_ptr<Expr> parseExpr() { return parseBinary(1); }

  std::unique_ptr<Expr> parseBinary(int minPrec) {
    auto lhs = parseUnary();
    for (;;) {
      const int prec = precedence(cur().kind);
      if (prec < minPrec || prec == 0) return lhs;
      const Tok opTok = cur().kind;
      auto e = makeExpr(ExprKind::Binary);
      advance();
      auto rhs = parseBinary(prec + 1);  // left associative
      e->binaryOp = toBinaryOp(opTok);
      e->children.push_back(std::move(lhs));
      e->children.push_back(std::move(rhs));
      lhs = std::move(e);
    }
  }

  std::unique_ptr<Expr> parseUnary() {
    if (at(Tok::Minus)) {
      auto e = makeExpr(ExprKind::Unary);
      e->unaryOp = UnaryOp::Neg;
      advance();
      e->children.push_back(parseUnary());
      return e;
    }
    if (at(Tok::Bang)) {
      auto e = makeExpr(ExprKind::Unary);
      e->unaryOp = UnaryOp::Not;
      advance();
      e->children.push_back(parseUnary());
      return e;
    }
    return parsePostfix();
  }

  std::unique_ptr<Expr> parsePostfix() {
    auto e = parsePrimary();
    while (at(Tok::LBracket)) {
      auto idx = makeExpr(ExprKind::Index);
      if (e->kind != ExprKind::VarRef) {
        error("only named arrays can be indexed");
      } else {
        idx->name = e->name;
      }
      advance();  // [
      idx->children.push_back(parseExpr());
      expect(Tok::RBracket, "after index");
      e = std::move(idx);
    }
    return e;
  }

  std::unique_ptr<Expr> parsePrimary() {
    switch (cur().kind) {
      case Tok::IntLit: {
        auto e = makeExpr(ExprKind::IntLit);
        e->intValue = cur().intValue;
        advance();
        return e;
      }
      case Tok::FloatLit: {
        auto e = makeExpr(ExprKind::FloatLit);
        e->floatValue = cur().floatValue;
        advance();
        return e;
      }
      case Tok::KwTrue:
      case Tok::KwFalse: {
        auto e = makeExpr(ExprKind::BoolLit);
        e->boolValue = at(Tok::KwTrue);
        advance();
        return e;
      }
      case Tok::StrLit: {
        auto e = makeExpr(ExprKind::StrLit);
        e->strValue = cur().text;
        advance();
        return e;
      }
      case Tok::KwI64:
      case Tok::KwF64: {
        // Cast syntax: i64(expr) / f64(expr).
        auto e = makeExpr(ExprKind::Cast);
        e->castTo = at(Tok::KwI64) ? AstType::I64 : AstType::F64;
        advance();
        expect(Tok::LParen, "after cast type");
        e->children.push_back(parseExpr());
        expect(Tok::RParen, "after cast operand");
        return e;
      }
      case Tok::Ident: {
        if (peek().kind == Tok::LParen) {
          auto e = makeExpr(ExprKind::Call);
          e->name = cur().text;
          advance();  // ident
          advance();  // (
          while (!at(Tok::RParen) && !at(Tok::End)) {
            e->children.push_back(parseExpr());
            if (at(Tok::Comma)) advance();
            else break;
          }
          expect(Tok::RParen, "after call arguments");
          return e;
        }
        auto e = makeExpr(ExprKind::VarRef);
        e->name = cur().text;
        advance();
        return e;
      }
      case Tok::LParen: {
        advance();
        auto e = parseExpr();
        expect(Tok::RParen, "after parenthesized expression");
        return e;
      }
      default: {
        error(strf("expected an expression, got %s", tokName(cur().kind)));
        auto e = makeExpr(ExprKind::IntLit);
        advance();
        return e;
      }
    }
  }

  const std::vector<Token>& tokens_;
  ParseResult& out_;
  std::size_t pos_ = 0;
};

}  // namespace

ParseResult parse(const std::vector<Token>& tokens) {
  ParseResult result;
  RF_CHECK(!tokens.empty(), "parse: empty token stream");
  Parser(tokens, result).run();
  return result;
}

}  // namespace refine::fe
