#include "frontend/sema.h"

#include <optional>

#include "support/strings.h"

namespace refine::fe {

const char* astTypeName(AstType t) noexcept {
  switch (t) {
    case AstType::Void: return "void";
    case AstType::Bool: return "bool";
    case AstType::I64: return "i64";
    case AstType::F64: return "f64";
  }
  return "?";
}

namespace {

struct BuiltinSig {
  const char* name;
  AstType returnType;
  std::vector<AstType> params;
};

const std::vector<BuiltinSig>& builtins() {
  static const std::vector<BuiltinSig> table = {
      {"print_i64", AstType::Void, {AstType::I64}},
      {"print_f64", AstType::Void, {AstType::F64}},
      {"print_str", AstType::Void, {AstType::Void}},  // special: string literal
      {"sqrt", AstType::F64, {AstType::F64}},
      {"fabs", AstType::F64, {AstType::F64}},
      {"exp", AstType::F64, {AstType::F64}},
      {"log", AstType::F64, {AstType::F64}},
      {"sin", AstType::F64, {AstType::F64}},
      {"cos", AstType::F64, {AstType::F64}},
      {"pow", AstType::F64, {AstType::F64, AstType::F64}},
      {"floor", AstType::F64, {AstType::F64}},
  };
  return table;
}

const BuiltinSig* findBuiltin(const std::string& name) {
  for (const auto& b : builtins()) {
    if (name == b.name) return &b;
  }
  return nullptr;
}

class Sema {
 public:
  Sema(Program& program, SemaInfo& info) : program_(program), info_(info) {}

  void run() {
    for (const auto& g : program_.globals) declareGlobal(g);
    for (const auto& fn : program_.functions) {
      if (findBuiltin(fn->name) != nullptr) {
        error(fn->loc, "function name collides with builtin: " + fn->name);
      }
      if (functions_.contains(fn->name)) {
        error(fn->loc, "duplicate function: " + fn->name);
      }
      functions_[fn->name] = fn.get();
    }
    for (auto& fn : program_.functions) checkFunction(*fn);
    const FunctionDecl* main = nullptr;
    auto it = functions_.find("main");
    if (it != functions_.end()) main = it->second;
    if (main == nullptr) {
      info_.errors.push_back("program has no 'main' function");
    } else if (main->returnType != AstType::I64 || !main->params.empty()) {
      error(main->loc, "'main' must be 'fn main() -> i64' with no parameters");
    }
  }

 private:
  void error(SrcLoc loc, const std::string& msg) {
    info_.errors.push_back(strf("%d:%d: %s", loc.line, loc.col, msg.c_str()));
  }

  int addSymbol(Symbol sym) {
    info_.symbols.push_back(std::move(sym));
    return static_cast<int>(info_.symbols.size()) - 1;
  }

  void declareGlobal(const GlobalDecl& g) {
    if (globalScope_.contains(g.name)) {
      error(g.loc, "duplicate global: " + g.name);
      return;
    }
    Symbol sym;
    sym.kind = SymbolKind::Global;
    sym.type = g.type;
    sym.arrayCount = g.arrayCount;
    sym.name = g.name;
    globalScope_[g.name] = addSymbol(std::move(sym));
  }

  // -- Scope handling -------------------------------------------------------
  std::optional<int> lookup(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto found = it->find(name);
      if (found != it->end()) return found->second;
    }
    auto g = globalScope_.find(name);
    if (g != globalScope_.end()) return g->second;
    return std::nullopt;
  }

  void checkFunction(FunctionDecl& fn) {
    currentFn_ = &fn;
    scopes_.clear();
    scopes_.emplace_back();
    loopDepth_ = 0;
    auto& paramIds = info_.paramSymbols[&fn];
    for (const auto& p : fn.params) {
      if (scopes_.back().contains(p.name)) {
        error(p.loc, "duplicate parameter: " + p.name);
      }
      Symbol sym;
      sym.kind = SymbolKind::Param;
      sym.type = p.type;
      sym.name = p.name;
      const int id = addSymbol(std::move(sym));
      scopes_.back()[p.name] = id;
      paramIds.push_back(id);
    }
    checkStmtList(fn.body);
    currentFn_ = nullptr;
  }

  void checkStmtList(std::vector<std::unique_ptr<Stmt>>& stmts) {
    for (auto& s : stmts) {
      if (s != nullptr) checkStmt(*s);
    }
  }

  void checkStmt(Stmt& s) {
    switch (s.kind) {
      case StmtKind::VarDecl: {
        if (scopes_.back().contains(s.name)) {
          error(s.loc, "duplicate variable in scope: " + s.name);
        }
        Symbol sym;
        sym.kind = SymbolKind::Local;
        sym.type = s.declType;
        sym.arrayCount = s.arrayCount;
        sym.name = s.name;
        s.symbolId = addSymbol(std::move(sym));
        scopes_.back()[s.name] = s.symbolId;
        if (s.expr0 != nullptr) {
          const AstType t = checkExpr(*s.expr0);
          if (s.arrayCount > 0) {
            error(s.loc, "array declarations cannot have initializers");
          } else if (t != s.declType) {
            error(s.loc, strf("initializer type %s does not match %s",
                              astTypeName(t), astTypeName(s.declType)));
          }
        }
        break;
      }
      case StmtKind::Assign: {
        const auto id = lookup(s.name);
        if (!id.has_value()) {
          error(s.loc, "assignment to undeclared variable: " + s.name);
          break;
        }
        s.symbolId = *id;
        const Symbol& sym = info_.symbols[static_cast<std::size_t>(*id)];
        if (sym.isArray()) {
          error(s.loc, "cannot assign to an array without an index: " + s.name);
          break;
        }
        const AstType t = checkExpr(*s.expr0);
        if (t != sym.type) {
          error(s.loc, strf("cannot assign %s to %s variable '%s'",
                            astTypeName(t), astTypeName(sym.type), s.name.c_str()));
        }
        break;
      }
      case StmtKind::IndexAssign: {
        const auto id = lookup(s.name);
        if (!id.has_value()) {
          error(s.loc, "assignment to undeclared array: " + s.name);
          break;
        }
        s.symbolId = *id;
        const Symbol& sym = info_.symbols[static_cast<std::size_t>(*id)];
        if (!sym.isArray()) {
          error(s.loc, "indexed assignment to non-array: " + s.name);
          break;
        }
        if (checkExpr(*s.expr0) != AstType::I64) {
          error(s.loc, "array index must be i64");
        }
        const AstType t = checkExpr(*s.expr1);
        if (t != sym.type) {
          error(s.loc, strf("cannot store %s into %s array '%s'",
                            astTypeName(t), astTypeName(sym.type), s.name.c_str()));
        }
        break;
      }
      case StmtKind::If: {
        if (checkExpr(*s.expr0) != AstType::Bool) {
          error(s.loc, "if condition must be bool");
        }
        pushScope();
        checkStmtList(s.body);
        popScope();
        pushScope();
        checkStmtList(s.elseBody);
        popScope();
        break;
      }
      case StmtKind::While: {
        if (checkExpr(*s.expr0) != AstType::Bool) {
          error(s.loc, "while condition must be bool");
        }
        ++loopDepth_;
        pushScope();
        checkStmtList(s.body);
        popScope();
        --loopDepth_;
        break;
      }
      case StmtKind::For: {
        pushScope();
        if (s.forInit != nullptr) checkStmt(*s.forInit);
        if (s.expr0 != nullptr && checkExpr(*s.expr0) != AstType::Bool) {
          error(s.loc, "for condition must be bool");
        }
        if (s.forStep != nullptr) checkStmt(*s.forStep);
        ++loopDepth_;
        pushScope();
        checkStmtList(s.body);
        popScope();
        --loopDepth_;
        popScope();
        break;
      }
      case StmtKind::Return: {
        const AstType want = currentFn_->returnType;
        if (s.expr0 == nullptr) {
          if (want != AstType::Void) {
            error(s.loc, "missing return value");
          }
        } else {
          const AstType t = checkExpr(*s.expr0);
          if (want == AstType::Void) {
            error(s.loc, "void function cannot return a value");
          } else if (t != want) {
            error(s.loc, strf("return type %s does not match %s",
                              astTypeName(t), astTypeName(want)));
          }
        }
        break;
      }
      case StmtKind::ExprStmt:
        checkExpr(*s.expr0);
        break;
      case StmtKind::Break:
      case StmtKind::Continue:
        if (loopDepth_ == 0) {
          error(s.loc, s.kind == StmtKind::Break ? "break outside a loop"
                                                 : "continue outside a loop");
        }
        break;
      case StmtKind::Block:
        pushScope();
        checkStmtList(s.body);
        popScope();
        break;
    }
  }

  void pushScope() { scopes_.emplace_back(); }
  void popScope() { scopes_.pop_back(); }

  AstType checkExpr(Expr& e) {
    switch (e.kind) {
      case ExprKind::IntLit: e.type = AstType::I64; break;
      case ExprKind::FloatLit: e.type = AstType::F64; break;
      case ExprKind::BoolLit: e.type = AstType::Bool; break;
      case ExprKind::StrLit:
        error(e.loc, "string literals are only allowed as print_str argument");
        e.type = AstType::Void;
        break;
      case ExprKind::VarRef: {
        const auto id = lookup(e.name);
        if (!id.has_value()) {
          error(e.loc, "use of undeclared identifier: " + e.name);
          e.type = AstType::I64;
          break;
        }
        e.symbolId = *id;
        const Symbol& sym = info_.symbols[static_cast<std::size_t>(*id)];
        if (sym.isArray()) {
          error(e.loc, "array used without an index: " + e.name);
        }
        e.type = sym.type;
        break;
      }
      case ExprKind::Index: {
        const auto id = lookup(e.name);
        if (!id.has_value()) {
          error(e.loc, "use of undeclared array: " + e.name);
          e.type = AstType::I64;
          break;
        }
        e.symbolId = *id;
        const Symbol& sym = info_.symbols[static_cast<std::size_t>(*id)];
        if (!sym.isArray()) error(e.loc, "indexing non-array: " + e.name);
        if (checkExpr(*e.children[0]) != AstType::I64) {
          error(e.loc, "array index must be i64");
        }
        e.type = sym.type;
        break;
      }
      case ExprKind::Call: checkCall(e); break;
      case ExprKind::Unary: {
        const AstType t = checkExpr(*e.children[0]);
        if (e.unaryOp == UnaryOp::Neg) {
          if (t != AstType::I64 && t != AstType::F64) {
            error(e.loc, "unary '-' requires i64 or f64");
          }
          e.type = t;
        } else {
          if (t != AstType::Bool) error(e.loc, "'!' requires bool");
          e.type = AstType::Bool;
        }
        break;
      }
      case ExprKind::Binary: checkBinary(e); break;
      case ExprKind::Cast: {
        const AstType from = checkExpr(*e.children[0]);
        const AstType to = e.castTo;
        const bool ok =
            (to == AstType::I64 && (from == AstType::I64 || from == AstType::F64 ||
                                    from == AstType::Bool)) ||
            (to == AstType::F64 && (from == AstType::I64 || from == AstType::F64));
        if (!ok) {
          error(e.loc, strf("invalid cast from %s to %s", astTypeName(from),
                            astTypeName(to)));
        }
        e.type = to;
        break;
      }
    }
    return e.type;
  }

  void checkCall(Expr& e) {
    // print_str is special: exactly one string-literal argument.
    if (e.name == "print_str") {
      e.type = AstType::Void;
      if (e.children.size() != 1 || e.children[0]->kind != ExprKind::StrLit) {
        error(e.loc, "print_str takes exactly one string literal");
      }
      return;
    }
    if (const BuiltinSig* b = findBuiltin(e.name)) {
      e.type = b->returnType;
      if (e.children.size() != b->params.size()) {
        error(e.loc, strf("%s expects %zu arguments", e.name.c_str(),
                          b->params.size()));
        return;
      }
      for (std::size_t i = 0; i < e.children.size(); ++i) {
        const AstType t = checkExpr(*e.children[i]);
        if (t != b->params[i]) {
          error(e.loc, strf("%s argument %zu must be %s, got %s",
                            e.name.c_str(), i + 1, astTypeName(b->params[i]),
                            astTypeName(t)));
        }
      }
      return;
    }
    auto it = functions_.find(e.name);
    if (it == functions_.end()) {
      error(e.loc, "call to undeclared function: " + e.name);
      e.type = AstType::I64;
      return;
    }
    const FunctionDecl* callee = it->second;
    e.type = callee->returnType;
    if (e.children.size() != callee->params.size()) {
      error(e.loc, strf("%s expects %zu arguments, got %zu", e.name.c_str(),
                        callee->params.size(), e.children.size()));
      return;
    }
    for (std::size_t i = 0; i < e.children.size(); ++i) {
      const AstType t = checkExpr(*e.children[i]);
      if (t != callee->params[i].type) {
        error(e.loc, strf("%s argument %zu must be %s, got %s", e.name.c_str(),
                          i + 1, astTypeName(callee->params[i].type),
                          astTypeName(t)));
      }
    }
  }

  void checkBinary(Expr& e) {
    const AstType lhs = checkExpr(*e.children[0]);
    const AstType rhs = checkExpr(*e.children[1]);
    auto bothAre = [&](AstType t) { return lhs == t && rhs == t; };
    switch (e.binaryOp) {
      case BinaryOp::Add: case BinaryOp::Sub:
      case BinaryOp::Mul: case BinaryOp::Div:
        if (bothAre(AstType::I64)) {
          e.type = AstType::I64;
        } else if (bothAre(AstType::F64)) {
          e.type = AstType::F64;
        } else {
          error(e.loc, strf("arithmetic requires matching numeric types "
                            "(got %s and %s)", astTypeName(lhs), astTypeName(rhs)));
          e.type = AstType::I64;
        }
        break;
      case BinaryOp::Rem: case BinaryOp::BitAnd: case BinaryOp::BitOr:
      case BinaryOp::BitXor: case BinaryOp::Shl: case BinaryOp::Shr:
        if (!bothAre(AstType::I64)) {
          error(e.loc, "integer operator requires i64 operands");
        }
        e.type = AstType::I64;
        break;
      case BinaryOp::Lt: case BinaryOp::Le: case BinaryOp::Gt:
      case BinaryOp::Ge: case BinaryOp::Eq: case BinaryOp::Ne:
        if (!bothAre(AstType::I64) && !bothAre(AstType::F64)) {
          error(e.loc, strf("comparison requires matching numeric types "
                            "(got %s and %s)", astTypeName(lhs), astTypeName(rhs)));
        }
        e.type = AstType::Bool;
        break;
      case BinaryOp::LogAnd: case BinaryOp::LogOr:
        if (!bothAre(AstType::Bool)) {
          error(e.loc, "logical operator requires bool operands");
        }
        e.type = AstType::Bool;
        break;
    }
  }

  Program& program_;
  SemaInfo& info_;
  std::unordered_map<std::string, int> globalScope_;
  std::unordered_map<std::string, const FunctionDecl*> functions_;
  std::vector<std::unordered_map<std::string, int>> scopes_;
  const FunctionDecl* currentFn_ = nullptr;
  int loopDepth_ = 0;
};

}  // namespace

SemaInfo analyze(Program& program) {
  SemaInfo info;
  Sema(program, info).run();
  return info;
}

}  // namespace refine::fe
