#include "frontend/lexer.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

#include "support/strings.h"

namespace refine::fe {

const char* tokName(Tok t) noexcept {
  switch (t) {
    case Tok::End: return "<eof>";
    case Tok::IntLit: return "integer literal";
    case Tok::FloatLit: return "float literal";
    case Tok::StrLit: return "string literal";
    case Tok::Ident: return "identifier";
    case Tok::KwVar: return "'var'";
    case Tok::KwFn: return "'fn'";
    case Tok::KwIf: return "'if'";
    case Tok::KwElse: return "'else'";
    case Tok::KwWhile: return "'while'";
    case Tok::KwFor: return "'for'";
    case Tok::KwReturn: return "'return'";
    case Tok::KwBreak: return "'break'";
    case Tok::KwContinue: return "'continue'";
    case Tok::KwI64: return "'i64'";
    case Tok::KwF64: return "'f64'";
    case Tok::KwVoid: return "'void'";
    case Tok::KwTrue: return "'true'";
    case Tok::KwFalse: return "'false'";
    case Tok::LParen: return "'('";
    case Tok::RParen: return "')'";
    case Tok::LBrace: return "'{'";
    case Tok::RBrace: return "'}'";
    case Tok::LBracket: return "'['";
    case Tok::RBracket: return "']'";
    case Tok::Comma: return "','";
    case Tok::Semicolon: return "';'";
    case Tok::Colon: return "':'";
    case Tok::Arrow: return "'->'";
    case Tok::Assign: return "'='";
    case Tok::Plus: return "'+'";
    case Tok::Minus: return "'-'";
    case Tok::Star: return "'*'";
    case Tok::Slash: return "'/'";
    case Tok::Percent: return "'%'";
    case Tok::Amp: return "'&'";
    case Tok::Pipe: return "'|'";
    case Tok::Caret: return "'^'";
    case Tok::Shl: return "'<<'";
    case Tok::Shr: return "'>>'";
    case Tok::AmpAmp: return "'&&'";
    case Tok::PipePipe: return "'||'";
    case Tok::Bang: return "'!'";
    case Tok::Lt: return "'<'";
    case Tok::Le: return "'<='";
    case Tok::Gt: return "'>'";
    case Tok::Ge: return "'>='";
    case Tok::EqEq: return "'=='";
    case Tok::NotEq: return "'!='";
  }
  return "?";
}

namespace {

const std::unordered_map<std::string_view, Tok>& keywords() {
  static const std::unordered_map<std::string_view, Tok> map = {
      {"var", Tok::KwVar},     {"fn", Tok::KwFn},
      {"if", Tok::KwIf},       {"else", Tok::KwElse},
      {"while", Tok::KwWhile}, {"for", Tok::KwFor},
      {"return", Tok::KwReturn}, {"break", Tok::KwBreak},
      {"continue", Tok::KwContinue}, {"i64", Tok::KwI64},
      {"f64", Tok::KwF64},     {"void", Tok::KwVoid},
      {"true", Tok::KwTrue},   {"false", Tok::KwFalse},
  };
  return map;
}

}  // namespace

LexResult lex(std::string_view src) {
  LexResult result;
  int line = 1;
  int col = 1;
  std::size_t i = 0;

  auto error = [&](const std::string& msg) {
    result.errors.push_back(strf("%d:%d: %s", line, col, msg.c_str()));
  };
  auto make = [&](Tok kind) {
    Token t;
    t.kind = kind;
    t.line = line;
    t.col = col;
    return t;
  };
  auto advance = [&](std::size_t n = 1) {
    for (std::size_t k = 0; k < n && i < src.size(); ++k) {
      if (src[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
      ++i;
    }
  };

  while (i < src.size()) {
    const char c = src[i];
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      while (i < src.size() && src[i] != '\n') advance();
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      Token t = make(Tok::IntLit);
      std::size_t start = i;
      bool isFloat = false;
      while (i < src.size() && std::isdigit(static_cast<unsigned char>(src[i]))) advance();
      if (i < src.size() && src[i] == '.') {
        isFloat = true;
        advance();
        while (i < src.size() && std::isdigit(static_cast<unsigned char>(src[i]))) advance();
      }
      if (i < src.size() && (src[i] == 'e' || src[i] == 'E')) {
        isFloat = true;
        advance();
        if (i < src.size() && (src[i] == '+' || src[i] == '-')) advance();
        while (i < src.size() && std::isdigit(static_cast<unsigned char>(src[i]))) advance();
      }
      const std::string text(src.substr(start, i - start));
      if (isFloat) {
        t.kind = Tok::FloatLit;
        t.floatValue = std::strtod(text.c_str(), nullptr);
      } else {
        t.intValue = std::strtoll(text.c_str(), nullptr, 10);
      }
      t.text = text;
      result.tokens.push_back(std::move(t));
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      Token t = make(Tok::Ident);
      std::size_t start = i;
      while (i < src.size() && (std::isalnum(static_cast<unsigned char>(src[i])) ||
                                src[i] == '_')) {
        advance();
      }
      t.text = std::string(src.substr(start, i - start));
      auto kw = keywords().find(t.text);
      if (kw != keywords().end()) t.kind = kw->second;
      result.tokens.push_back(std::move(t));
      continue;
    }
    if (c == '"') {
      Token t = make(Tok::StrLit);
      advance();
      std::string text;
      bool closed = false;
      while (i < src.size()) {
        if (src[i] == '"') {
          closed = true;
          advance();
          break;
        }
        if (src[i] == '\\' && i + 1 < src.size()) {
          const char esc = src[i + 1];
          advance(2);
          switch (esc) {
            case 'n': text += '\n'; break;
            case 't': text += '\t'; break;
            case '\\': text += '\\'; break;
            case '"': text += '"'; break;
            default: error(strf("unknown escape '\\%c'", esc)); break;
          }
          continue;
        }
        text += src[i];
        advance();
      }
      if (!closed) error("unterminated string literal");
      t.text = std::move(text);
      result.tokens.push_back(std::move(t));
      continue;
    }

    // Punctuation and operators.
    auto two = [&](char next) {
      return i + 1 < src.size() && src[i + 1] == next;
    };
    Token t = make(Tok::End);
    switch (c) {
      case '(': t.kind = Tok::LParen; advance(); break;
      case ')': t.kind = Tok::RParen; advance(); break;
      case '{': t.kind = Tok::LBrace; advance(); break;
      case '}': t.kind = Tok::RBrace; advance(); break;
      case '[': t.kind = Tok::LBracket; advance(); break;
      case ']': t.kind = Tok::RBracket; advance(); break;
      case ',': t.kind = Tok::Comma; advance(); break;
      case ';': t.kind = Tok::Semicolon; advance(); break;
      case ':': t.kind = Tok::Colon; advance(); break;
      case '+': t.kind = Tok::Plus; advance(); break;
      case '*': t.kind = Tok::Star; advance(); break;
      case '/': t.kind = Tok::Slash; advance(); break;
      case '%': t.kind = Tok::Percent; advance(); break;
      case '^': t.kind = Tok::Caret; advance(); break;
      case '-':
        if (two('>')) { t.kind = Tok::Arrow; advance(2); }
        else { t.kind = Tok::Minus; advance(); }
        break;
      case '&':
        if (two('&')) { t.kind = Tok::AmpAmp; advance(2); }
        else { t.kind = Tok::Amp; advance(); }
        break;
      case '|':
        if (two('|')) { t.kind = Tok::PipePipe; advance(2); }
        else { t.kind = Tok::Pipe; advance(); }
        break;
      case '!':
        if (two('=')) { t.kind = Tok::NotEq; advance(2); }
        else { t.kind = Tok::Bang; advance(); }
        break;
      case '=':
        if (two('=')) { t.kind = Tok::EqEq; advance(2); }
        else { t.kind = Tok::Assign; advance(); }
        break;
      case '<':
        if (two('=')) { t.kind = Tok::Le; advance(2); }
        else if (two('<')) { t.kind = Tok::Shl; advance(2); }
        else { t.kind = Tok::Lt; advance(); }
        break;
      case '>':
        if (two('=')) { t.kind = Tok::Ge; advance(2); }
        else if (two('>')) { t.kind = Tok::Shr; advance(2); }
        else { t.kind = Tok::Gt; advance(); }
        break;
      default:
        error(strf("unexpected character '%c'", c));
        advance();
        continue;
    }
    result.tokens.push_back(std::move(t));
  }

  Token end;
  end.kind = Tok::End;
  end.line = line;
  end.col = col;
  result.tokens.push_back(std::move(end));
  return result;
}

}  // namespace refine::fe
