// IR generation from a type-checked MiniC program.
#pragma once

#include <memory>

#include "frontend/ast.h"
#include "frontend/sema.h"
#include "ir/ir.h"

namespace refine::fe {

/// Lowers `program` (already analyzed; sema must have reported no errors)
/// into a fresh IR module. The module is verified before being returned.
std::unique_ptr<ir::Module> generateIR(const Program& program,
                                       const SemaInfo& sema);

}  // namespace refine::fe
