// Hand-written lexer for MiniC.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "frontend/token.h"

namespace refine::fe {

/// Tokenizes `source`; appends an End token. Lexical errors are reported via
/// the returned diagnostics vector (the token stream is still usable).
struct LexResult {
  std::vector<Token> tokens;
  std::vector<std::string> errors;
};

LexResult lex(std::string_view source);

}  // namespace refine::fe
