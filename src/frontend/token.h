// Token definitions for MiniC, the benchmark source language.
#pragma once

#include <cstdint>
#include <string>

namespace refine::fe {

enum class Tok : std::uint8_t {
  End,
  // Literals and identifiers
  IntLit, FloatLit, StrLit, Ident,
  // Keywords
  KwVar, KwFn, KwIf, KwElse, KwWhile, KwFor, KwReturn, KwBreak, KwContinue,
  KwI64, KwF64, KwVoid, KwTrue, KwFalse,
  // Punctuation
  LParen, RParen, LBrace, RBrace, LBracket, RBracket,
  Comma, Semicolon, Colon, Arrow,
  // Operators
  Assign,            // =
  Plus, Minus, Star, Slash, Percent,
  Amp, Pipe, Caret, Shl, Shr,
  AmpAmp, PipePipe, Bang,
  Lt, Le, Gt, Ge, EqEq, NotEq,
};

struct Token {
  Tok kind = Tok::End;
  std::string text;        // identifier name or string literal contents
  std::int64_t intValue = 0;
  double floatValue = 0.0;
  int line = 0;
  int col = 0;
};

const char* tokName(Tok t) noexcept;

}  // namespace refine::fe
