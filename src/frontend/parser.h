// Recursive-descent parser for MiniC.
#pragma once

#include <string>
#include <vector>

#include "frontend/ast.h"
#include "frontend/token.h"

namespace refine::fe {

struct ParseResult {
  Program program;
  std::vector<std::string> errors;
};

/// Parses a token stream (as produced by lex()).
ParseResult parse(const std::vector<Token>& tokens);

}  // namespace refine::fe
