#include "frontend/codegen.h"

#include <bit>
#include <unordered_map>

#include "ir/builder.h"
#include "ir/runtime.h"
#include "ir/verifier.h"
#include "support/check.h"

namespace refine::fe {

namespace {

ir::Type toIrType(AstType t) {
  switch (t) {
    case AstType::Void: return ir::Type::Void;
    case AstType::Bool: return ir::Type::I1;
    case AstType::I64: return ir::Type::I64;
    case AstType::F64: return ir::Type::F64;
  }
  RF_UNREACHABLE("bad AstType");
}

class CodeGen {
 public:
  CodeGen(const Program& program, const SemaInfo& sema)
      : program_(program), sema_(sema), module_(std::make_unique<ir::Module>()),
        builder_(*module_) {}

  std::unique_ptr<ir::Module> run() {
    for (const auto& g : program_.globals) emitGlobal(g);
    // Declare all defined functions up front so calls can be emitted in any
    // order, then declare runtime externals on demand.
    for (const auto& fn : program_.functions) {
      ir::Function* f = module_->addFunction(
          fn->name, toIrType(fn->returnType), ir::FunctionKind::Defined);
      for (const auto& p : fn->params) f->addParam(toIrType(p.type), p.name);
      irFunctions_[fn.get()] = f;
    }
    for (const auto& fn : program_.functions) emitFunction(*fn);
    ir::verifyOrThrow(*module_);
    return std::move(module_);
  }

 private:
  // -- Globals ---------------------------------------------------------------
  void emitGlobal(const GlobalDecl& g) {
    const std::uint64_t count =
        g.arrayCount > 0 ? static_cast<std::uint64_t>(g.arrayCount) : 1;
    ir::GlobalVar* gv = module_->addGlobal(g.name, toIrType(g.type), count);
    if (g.hasInit) {
      const std::uint64_t bits =
          g.type == AstType::F64
              ? std::bit_cast<std::uint64_t>(g.floatInit)
              : static_cast<std::uint64_t>(g.intInit);
      gv->setInit({bits});
    }
    globalByName_[g.name] = gv;
  }

  // -- Functions ----------------------------------------------------------------
  void emitFunction(const FunctionDecl& fn) {
    currentDecl_ = &fn;
    ir::Function* f = irFunctions_.at(&fn);
    currentFn_ = f;
    symbolSlots_.clear();
    loopStack_.clear();
    blockCounter_ = 0;
    entryAllocaPos_ = 0;

    ir::BasicBlock* entry = f->addBlock("entry");
    builder_.setInsertPoint(entry);

    // Spill parameters to stack slots (mem2reg re-promotes them later);
    // this mirrors the classic clang -O0 pattern the optimizer expects.
    const auto& paramIds = sema_.paramSymbols.at(&fn);
    for (std::size_t i = 0; i < fn.params.size(); ++i) {
      ir::Value* slot = createEntryAlloca(toIrType(fn.params[i].type), 1);
      builder_.createStore(f->params()[i].get(), slot);
      symbolSlots_[paramIds[i]] = slot;
    }

    emitStmtList(fn.body);

    // Any block still open (function end, dead continuation after return)
    // gets a default return so every block is properly terminated.
    for (const auto& bb : f->blocks()) {
      if (bb->terminator() == nullptr) {
        builder_.setInsertPoint(bb.get());
        emitDefaultReturn();
      }
    }
    currentFn_ = nullptr;
    currentDecl_ = nullptr;
  }

  void emitDefaultReturn() {
    switch (currentDecl_->returnType) {
      case AstType::Void: builder_.createRet(); break;
      case AstType::I64: builder_.createRet(module_->constI64(0)); break;
      case AstType::F64: builder_.createRet(module_->constF64(0.0)); break;
      case AstType::Bool: builder_.createRet(module_->constI1(false)); break;
    }
  }

  ir::Value* createEntryAlloca(ir::Type elemType, std::uint64_t count) {
    auto inst = std::make_unique<ir::Instruction>(ir::Opcode::Alloca, ir::Type::Ptr);
    inst->setElemType(elemType);
    inst->setAllocaCount(count);
    return currentFn_->entry()->insertAt(entryAllocaPos_++, std::move(inst));
  }

  ir::BasicBlock* newBlock(const std::string& hint) {
    return currentFn_->addBlock(hint + "." + std::to_string(blockCounter_++));
  }

  // -- Statements ------------------------------------------------------------------
  void emitStmtList(const std::vector<std::unique_ptr<Stmt>>& stmts) {
    for (const auto& s : stmts) {
      if (s != nullptr) emitStmt(*s);
    }
  }

  void emitStmt(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::VarDecl: {
        const Symbol& sym = sema_.symbols[static_cast<std::size_t>(s.symbolId)];
        ir::Value* slot = createEntryAlloca(
            toIrType(sym.type),
            sym.isArray() ? static_cast<std::uint64_t>(sym.arrayCount) : 1);
        symbolSlots_[s.symbolId] = slot;
        if (s.expr0 != nullptr) {
          builder_.createStore(emitExpr(*s.expr0), slot);
        } else if (!sym.isArray()) {
          // Scalars are zero-initialized (ES.20: always initialize).
          ir::Value* zero = sym.type == AstType::F64
                                ? static_cast<ir::Value*>(module_->constF64(0.0))
                                : static_cast<ir::Value*>(module_->constI64(0));
          builder_.createStore(zero, slot);
        }
        break;
      }
      case StmtKind::Assign:
        builder_.createStore(emitExpr(*s.expr0), slotFor(s.symbolId));
        break;
      case StmtKind::IndexAssign: {
        const Symbol& sym = sema_.symbols[static_cast<std::size_t>(s.symbolId)];
        ir::Value* index = emitExpr(*s.expr0);
        ir::Value* value = emitExpr(*s.expr1);
        ir::Value* ptr =
            builder_.createGep(slotFor(s.symbolId), index, toIrType(sym.type));
        builder_.createStore(value, ptr);
        break;
      }
      case StmtKind::If: {
        ir::Value* cond = emitExpr(*s.expr0);
        ir::BasicBlock* thenBB = newBlock("if.then");
        ir::BasicBlock* mergeBB = newBlock("if.end");
        ir::BasicBlock* elseBB = s.elseBody.empty() ? mergeBB : newBlock("if.else");
        builder_.createCondBr(cond, thenBB, elseBB);
        builder_.setInsertPoint(thenBB);
        emitStmtList(s.body);
        if (builder_.insertBlock()->terminator() == nullptr) {
          builder_.createBr(mergeBB);
        }
        if (!s.elseBody.empty()) {
          builder_.setInsertPoint(elseBB);
          emitStmtList(s.elseBody);
          if (builder_.insertBlock()->terminator() == nullptr) {
            builder_.createBr(mergeBB);
          }
        }
        builder_.setInsertPoint(mergeBB);
        break;
      }
      case StmtKind::While: {
        ir::BasicBlock* condBB = newBlock("while.cond");
        ir::BasicBlock* bodyBB = newBlock("while.body");
        ir::BasicBlock* exitBB = newBlock("while.end");
        builder_.createBr(condBB);
        builder_.setInsertPoint(condBB);
        builder_.createCondBr(emitExpr(*s.expr0), bodyBB, exitBB);
        loopStack_.push_back({exitBB, condBB});
        builder_.setInsertPoint(bodyBB);
        emitStmtList(s.body);
        if (builder_.insertBlock()->terminator() == nullptr) {
          builder_.createBr(condBB);
        }
        loopStack_.pop_back();
        builder_.setInsertPoint(exitBB);
        break;
      }
      case StmtKind::For: {
        if (s.forInit != nullptr) emitStmt(*s.forInit);
        ir::BasicBlock* condBB = newBlock("for.cond");
        ir::BasicBlock* bodyBB = newBlock("for.body");
        ir::BasicBlock* stepBB = newBlock("for.step");
        ir::BasicBlock* exitBB = newBlock("for.end");
        builder_.createBr(condBB);
        builder_.setInsertPoint(condBB);
        if (s.expr0 != nullptr) {
          builder_.createCondBr(emitExpr(*s.expr0), bodyBB, exitBB);
        } else {
          builder_.createBr(bodyBB);
        }
        loopStack_.push_back({exitBB, stepBB});
        builder_.setInsertPoint(bodyBB);
        emitStmtList(s.body);
        if (builder_.insertBlock()->terminator() == nullptr) {
          builder_.createBr(stepBB);
        }
        loopStack_.pop_back();
        builder_.setInsertPoint(stepBB);
        if (s.forStep != nullptr) emitStmt(*s.forStep);
        builder_.createBr(condBB);
        builder_.setInsertPoint(exitBB);
        break;
      }
      case StmtKind::Return: {
        if (s.expr0 != nullptr) {
          builder_.createRet(emitExpr(*s.expr0));
        } else {
          builder_.createRet();
        }
        // Dead continuation for any statements after the return.
        builder_.setInsertPoint(newBlock("post.ret"));
        break;
      }
      case StmtKind::ExprStmt:
        emitExpr(*s.expr0);
        break;
      case StmtKind::Break:
        RF_CHECK(!loopStack_.empty(), "break outside loop survived sema");
        builder_.createBr(loopStack_.back().breakTarget);
        builder_.setInsertPoint(newBlock("post.break"));
        break;
      case StmtKind::Continue:
        RF_CHECK(!loopStack_.empty(), "continue outside loop survived sema");
        builder_.createBr(loopStack_.back().continueTarget);
        builder_.setInsertPoint(newBlock("post.continue"));
        break;
      case StmtKind::Block:
        emitStmtList(s.body);
        break;
    }
  }

  ir::Value* slotFor(int symbolId) {
    const Symbol& sym = sema_.symbols[static_cast<std::size_t>(symbolId)];
    if (sym.kind == SymbolKind::Global) {
      return globalByName_.at(sym.name);
    }
    return symbolSlots_.at(symbolId);
  }

  // -- Expressions ---------------------------------------------------------------
  ir::Value* emitExpr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::IntLit: return module_->constI64(e.intValue);
      case ExprKind::FloatLit: return module_->constF64(e.floatValue);
      case ExprKind::BoolLit: return module_->constI1(e.boolValue);
      case ExprKind::StrLit: RF_UNREACHABLE("stray string literal survived sema");
      case ExprKind::VarRef: {
        const Symbol& sym = sema_.symbols[static_cast<std::size_t>(e.symbolId)];
        return builder_.createLoad(toIrType(sym.type), slotFor(e.symbolId));
      }
      case ExprKind::Index: {
        const Symbol& sym = sema_.symbols[static_cast<std::size_t>(e.symbolId)];
        ir::Value* index = emitExpr(*e.children[0]);
        ir::Value* ptr =
            builder_.createGep(slotFor(e.symbolId), index, toIrType(sym.type));
        return builder_.createLoad(toIrType(sym.type), ptr);
      }
      case ExprKind::Call: return emitCall(e);
      case ExprKind::Unary: {
        ir::Value* v = emitExpr(*e.children[0]);
        if (e.unaryOp == UnaryOp::Neg) {
          if (e.type == AstType::F64) {
            return builder_.createBinary(ir::Opcode::FSub, module_->constF64(0.0), v);
          }
          return builder_.createBinary(ir::Opcode::Sub, module_->constI64(0), v);
        }
        return builder_.createSelect(v, module_->constI1(false), module_->constI1(true));
      }
      case ExprKind::Binary: return emitBinary(e);
      case ExprKind::Cast: {
        const AstType from = e.children[0]->type;
        ir::Value* v = emitExpr(*e.children[0]);
        if (from == e.castTo) return v;
        if (e.castTo == AstType::I64) {
          if (from == AstType::Bool) return builder_.createZExt(v);
          return builder_.createFPToSI(v);
        }
        return builder_.createSIToFP(v);
      }
    }
    RF_UNREACHABLE("bad expression kind");
  }

  ir::Value* emitBinary(const Expr& e) {
    using BO = BinaryOp;
    const BO op = e.binaryOp;
    if (op == BO::LogAnd || op == BO::LogOr) return emitShortCircuit(e);

    ir::Value* lhs = emitExpr(*e.children[0]);
    ir::Value* rhs = emitExpr(*e.children[1]);
    const bool isF64 = e.children[0]->type == AstType::F64;

    switch (op) {
      case BO::Add: return builder_.createBinary(isF64 ? ir::Opcode::FAdd : ir::Opcode::Add, lhs, rhs);
      case BO::Sub: return builder_.createBinary(isF64 ? ir::Opcode::FSub : ir::Opcode::Sub, lhs, rhs);
      case BO::Mul: return builder_.createBinary(isF64 ? ir::Opcode::FMul : ir::Opcode::Mul, lhs, rhs);
      case BO::Div: return builder_.createBinary(isF64 ? ir::Opcode::FDiv : ir::Opcode::SDiv, lhs, rhs);
      case BO::Rem: return builder_.createBinary(ir::Opcode::SRem, lhs, rhs);
      case BO::BitAnd: return builder_.createBinary(ir::Opcode::And, lhs, rhs);
      case BO::BitOr: return builder_.createBinary(ir::Opcode::Or, lhs, rhs);
      case BO::BitXor: return builder_.createBinary(ir::Opcode::Xor, lhs, rhs);
      case BO::Shl: return builder_.createBinary(ir::Opcode::Shl, lhs, rhs);
      case BO::Shr: return builder_.createBinary(ir::Opcode::AShr, lhs, rhs);
      case BO::Lt:
        return isF64 ? builder_.createFCmp(ir::FCmpPred::OLT, lhs, rhs)
                     : builder_.createICmp(ir::ICmpPred::SLT, lhs, rhs);
      case BO::Le:
        return isF64 ? builder_.createFCmp(ir::FCmpPred::OLE, lhs, rhs)
                     : builder_.createICmp(ir::ICmpPred::SLE, lhs, rhs);
      case BO::Gt:
        return isF64 ? builder_.createFCmp(ir::FCmpPred::OGT, lhs, rhs)
                     : builder_.createICmp(ir::ICmpPred::SGT, lhs, rhs);
      case BO::Ge:
        return isF64 ? builder_.createFCmp(ir::FCmpPred::OGE, lhs, rhs)
                     : builder_.createICmp(ir::ICmpPred::SGE, lhs, rhs);
      case BO::Eq:
        return isF64 ? builder_.createFCmp(ir::FCmpPred::OEQ, lhs, rhs)
                     : builder_.createICmp(ir::ICmpPred::EQ, lhs, rhs);
      case BO::Ne:
        return isF64 ? builder_.createFCmp(ir::FCmpPred::ONE, lhs, rhs)
                     : builder_.createICmp(ir::ICmpPred::NE, lhs, rhs);
      case BO::LogAnd:
      case BO::LogOr:
        break;
    }
    RF_UNREACHABLE("bad binary op");
  }

  ir::Value* emitShortCircuit(const Expr& e) {
    const bool isAnd = e.binaryOp == BinaryOp::LogAnd;
    ir::Value* lhs = emitExpr(*e.children[0]);
    ir::BasicBlock* lhsEnd = builder_.insertBlock();
    ir::BasicBlock* rhsBB = newBlock(isAnd ? "and.rhs" : "or.rhs");
    ir::BasicBlock* mergeBB = newBlock(isAnd ? "and.end" : "or.end");
    if (isAnd) {
      builder_.createCondBr(lhs, rhsBB, mergeBB);
    } else {
      builder_.createCondBr(lhs, mergeBB, rhsBB);
    }
    builder_.setInsertPoint(rhsBB);
    ir::Value* rhs = emitExpr(*e.children[1]);
    ir::BasicBlock* rhsEnd = builder_.insertBlock();
    builder_.createBr(mergeBB);
    builder_.setInsertPoint(mergeBB);
    ir::Instruction* phi = builder_.createPhi(ir::Type::I1);
    phi->addPhiIncoming(module_->constI1(!isAnd), lhsEnd);
    phi->addPhiIncoming(rhs, rhsEnd);
    return phi;
  }

  ir::Value* emitCall(const Expr& e) {
    // Intrinsics lowered to IR opcodes.
    if (e.name == "sqrt") return builder_.createFSqrt(emitExpr(*e.children[0]));
    if (e.name == "fabs") return builder_.createFAbs(emitExpr(*e.children[0]));
    if (e.name == "print_str") {
      const std::uint64_t index = module_->internString(e.children[0]->strValue);
      return builder_.createCall(
          runtimeFunction(ir::RuntimeFn::PrintStr),
          {module_->constI64(static_cast<std::int64_t>(index))});
    }
    if (const auto rt = ir::findRuntimeFn(e.name)) {
      std::vector<ir::Value*> args;
      for (const auto& a : e.children) args.push_back(emitExpr(*a));
      return builder_.createCall(runtimeFunction(*rt), args);
    }
    // User function.
    for (const auto& fn : program_.functions) {
      if (fn->name == e.name) {
        std::vector<ir::Value*> args;
        for (const auto& a : e.children) args.push_back(emitExpr(*a));
        return builder_.createCall(irFunctions_.at(fn.get()), args);
      }
    }
    RF_UNREACHABLE("call to unknown function survived sema: " + e.name);
  }

  ir::Function* runtimeFunction(ir::RuntimeFn fn) {
    auto it = runtimeDecls_.find(fn);
    if (it != runtimeDecls_.end()) return it->second;
    const ir::RuntimeFnInfo& info = ir::runtimeFnInfo(fn);
    ir::Function* f = module_->addFunction(info.name, info.returnType,
                                           ir::FunctionKind::External);
    for (std::size_t i = 0; i < info.paramTypes.size(); ++i) {
      f->addParam(info.paramTypes[i], "a" + std::to_string(i));
    }
    runtimeDecls_[fn] = f;
    return f;
  }

  struct LoopTargets {
    ir::BasicBlock* breakTarget;
    ir::BasicBlock* continueTarget;
  };

  const Program& program_;
  const SemaInfo& sema_;
  std::unique_ptr<ir::Module> module_;
  ir::IRBuilder builder_;
  std::unordered_map<const FunctionDecl*, ir::Function*> irFunctions_;
  std::unordered_map<std::string, ir::GlobalVar*> globalByName_;
  std::unordered_map<ir::RuntimeFn, ir::Function*> runtimeDecls_;
  std::unordered_map<int, ir::Value*> symbolSlots_;
  std::vector<LoopTargets> loopStack_;
  ir::Function* currentFn_ = nullptr;
  const FunctionDecl* currentDecl_ = nullptr;
  std::size_t entryAllocaPos_ = 0;
  int blockCounter_ = 0;
};

}  // namespace

std::unique_ptr<ir::Module> generateIR(const Program& program,
                                       const SemaInfo& sema) {
  RF_CHECK(sema.errors.empty(), "generateIR called with sema errors present");
  return CodeGen(program, sema).run();
}

}  // namespace refine::fe
