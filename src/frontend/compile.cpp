#include "frontend/compile.h"

#include "frontend/codegen.h"
#include "frontend/lexer.h"
#include "frontend/parser.h"
#include "frontend/sema.h"
#include "support/strings.h"

namespace refine::fe {

namespace {
[[noreturn]] void throwWith(const char* phase, std::vector<std::string> errors) {
  std::string what = strf("%s failed with %zu error(s):", phase, errors.size());
  for (const auto& e : errors) {
    what += "\n  ";
    what += e;
  }
  throw CompileError(std::move(what), std::move(errors));
}
}  // namespace

std::unique_ptr<ir::Module> compileToIR(std::string_view source) {
  LexResult lexed = lex(source);
  if (!lexed.errors.empty()) throwWith("lexing", std::move(lexed.errors));

  ParseResult parsed = parse(lexed.tokens);
  if (!parsed.errors.empty()) throwWith("parsing", std::move(parsed.errors));

  SemaInfo sema = analyze(parsed.program);
  if (!sema.errors.empty()) throwWith("semantic analysis", std::move(sema.errors));

  return generateIR(parsed.program, sema);
}

}  // namespace refine::fe
