// Semantic analysis for MiniC: name resolution and type checking.
//
// Sema stamps every VarRef/Index/VarDecl with a symbolId resolving it to a
// unique declaration, and annotates every expression with its type. MiniC is
// strictly typed: no implicit numeric conversions (use i64()/f64() casts).
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "frontend/ast.h"

namespace refine::fe {

enum class SymbolKind : std::uint8_t { Global, Param, Local };

struct Symbol {
  SymbolKind kind = SymbolKind::Local;
  AstType type = AstType::I64;
  std::int64_t arrayCount = 0;  // 0 for scalars
  std::string name;
  bool isArray() const noexcept { return arrayCount > 0; }
};

struct SemaInfo {
  std::vector<Symbol> symbols;  // indexed by symbolId
  /// Parameter symbolIds per function, in declaration order.
  std::unordered_map<const FunctionDecl*, std::vector<int>> paramSymbols;
  std::vector<std::string> errors;
};

/// Analyzes `program` in place (mutates AST annotations).
SemaInfo analyze(Program& program);

}  // namespace refine::fe
