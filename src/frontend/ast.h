// Abstract syntax tree for MiniC.
//
// Types in the AST: MiniC exposes i64, f64, bool (expression-only) and void
// (function returns). Arrays are declaration-only aggregates accessed by
// indexing; they are not first-class values.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace refine::fe {

enum class AstType : std::uint8_t { Void, Bool, I64, F64 };

const char* astTypeName(AstType t) noexcept;

struct SrcLoc {
  int line = 0;
  int col = 0;
};

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind : std::uint8_t {
  IntLit, FloatLit, BoolLit, StrLit,
  VarRef, Index, Call, Unary, Binary, Cast,
};

enum class UnaryOp : std::uint8_t { Neg, Not };

enum class BinaryOp : std::uint8_t {
  Add, Sub, Mul, Div, Rem,
  BitAnd, BitOr, BitXor, Shl, Shr,
  Lt, Le, Gt, Ge, Eq, Ne,
  LogAnd, LogOr,
};

struct Expr {
  ExprKind kind;
  SrcLoc loc;
  AstType type = AstType::Void;  // filled by sema

  // Literals
  std::int64_t intValue = 0;
  double floatValue = 0.0;
  bool boolValue = false;
  std::string strValue;

  // VarRef / Call target / Index base name
  std::string name;

  // Sema resolution for VarRef/Index (index into symbol storage; see sema.h)
  int symbolId = -1;

  // Operators
  UnaryOp unaryOp = UnaryOp::Neg;
  BinaryOp binaryOp = BinaryOp::Add;
  AstType castTo = AstType::Void;

  // Children: Unary/Cast use [0]; Binary uses [0],[1]; Index uses [0] as the
  // subscript; Call uses all as arguments.
  std::vector<std::unique_ptr<Expr>> children;
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtKind : std::uint8_t {
  VarDecl,      // var name: type [= init];  or  var name: type[count];
  Assign,       // name = expr;
  IndexAssign,  // name[idx] = expr;
  If, While, For, Return, ExprStmt, Break, Continue, Block,
};

struct Stmt {
  StmtKind kind;
  SrcLoc loc;

  // VarDecl / Assign / IndexAssign
  std::string name;
  AstType declType = AstType::Void;
  std::int64_t arrayCount = 0;  // > 0 for array declarations
  int symbolId = -1;            // filled by sema

  // Expression slots:
  //   VarDecl: expr0 = initializer (may be null)
  //   Assign: expr0 = value
  //   IndexAssign: expr0 = index, expr1 = value
  //   If/While: expr0 = condition
  //   For: expr0 = condition (may be null -> true)
  //   Return: expr0 = value (may be null)
  //   ExprStmt: expr0
  std::unique_ptr<Expr> expr0;
  std::unique_ptr<Expr> expr1;

  // Statement slots:
  //   If: body + elseBody; While/For: body
  //   For: init and step are single statements (Assign/VarDecl/ExprStmt)
  std::vector<std::unique_ptr<Stmt>> body;
  std::vector<std::unique_ptr<Stmt>> elseBody;
  std::unique_ptr<Stmt> forInit;
  std::unique_ptr<Stmt> forStep;
};

// ---------------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------------

struct ParamDecl {
  std::string name;
  AstType type = AstType::I64;
  SrcLoc loc;
};

struct FunctionDecl {
  std::string name;
  AstType returnType = AstType::Void;
  std::vector<ParamDecl> params;
  std::vector<std::unique_ptr<Stmt>> body;
  SrcLoc loc;
};

struct GlobalDecl {
  std::string name;
  AstType type = AstType::I64;
  std::int64_t arrayCount = 0;  // > 0 for arrays
  bool hasInit = false;
  std::int64_t intInit = 0;
  double floatInit = 0.0;
  SrcLoc loc;
};

struct Program {
  std::vector<GlobalDecl> globals;
  std::vector<std::unique_ptr<FunctionDecl>> functions;
};

}  // namespace refine::fe
