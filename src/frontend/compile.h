// One-call frontend driver: MiniC source -> verified IR module.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "ir/ir.h"

namespace refine::fe {

/// Thrown when the source has lexical, syntactic or semantic errors.
class CompileError : public std::runtime_error {
 public:
  CompileError(std::string what, std::vector<std::string> diagnostics)
      : std::runtime_error(std::move(what)), diagnostics_(std::move(diagnostics)) {}

  const std::vector<std::string>& diagnostics() const noexcept {
    return diagnostics_;
  }

 private:
  std::vector<std::string> diagnostics_;
};

/// Compiles MiniC source to IR; throws CompileError with all diagnostics on
/// failure.
std::unique_ptr<ir::Module> compileToIR(std::string_view source);

}  // namespace refine::fe
