// Convenience construction of IR, analogous to llvm::IRBuilder.
//
// The builder tracks an insertion block; create* methods append there and
// return the new instruction (as a Value* usable as an operand).
#pragma once

#include <memory>
#include <string>

#include "ir/ir.h"

namespace refine::ir {

class IRBuilder {
 public:
  explicit IRBuilder(Module& module) : module_(module) {}

  Module& module() noexcept { return module_; }

  void setInsertPoint(BasicBlock* bb) noexcept { block_ = bb; }
  BasicBlock* insertBlock() const noexcept { return block_; }

  // -- Terminators --------------------------------------------------------
  Instruction* createRet(Value* v = nullptr) {
    auto inst = make(Opcode::Ret, Type::Void);
    if (v != nullptr) inst->addOperand(v);
    return append(std::move(inst));
  }
  Instruction* createBr(BasicBlock* dest) {
    auto inst = make(Opcode::Br, Type::Void);
    inst->setTarget(0, dest);
    return append(std::move(inst));
  }
  Instruction* createCondBr(Value* cond, BasicBlock* ifTrue, BasicBlock* ifFalse) {
    RF_CHECK(cond->type() == Type::I1, "condbr condition must be i1");
    auto inst = make(Opcode::CondBr, Type::Void);
    inst->addOperand(cond);
    inst->setTarget(0, ifTrue);
    inst->setTarget(1, ifFalse);
    return append(std::move(inst));
  }

  // -- Memory ----------------------------------------------------------------
  Instruction* createAlloca(Type elemType, std::uint64_t count = 1) {
    auto inst = make(Opcode::Alloca, Type::Ptr);
    inst->setElemType(elemType);
    inst->setAllocaCount(count);
    return append(std::move(inst));
  }
  Instruction* createLoad(Type type, Value* ptr) {
    RF_CHECK(ptr->type() == Type::Ptr, "load from non-pointer");
    auto inst = make(Opcode::Load, type);
    inst->addOperand(ptr);
    return append(std::move(inst));
  }
  Instruction* createStore(Value* value, Value* ptr) {
    RF_CHECK(ptr->type() == Type::Ptr, "store to non-pointer");
    auto inst = make(Opcode::Store, Type::Void);
    inst->addOperand(value);
    inst->addOperand(ptr);
    return append(std::move(inst));
  }
  Instruction* createGep(Value* base, Value* index, Type elemType) {
    RF_CHECK(base->type() == Type::Ptr, "gep base must be a pointer");
    RF_CHECK(index->type() == Type::I64, "gep index must be i64");
    auto inst = make(Opcode::Gep, Type::Ptr);
    inst->addOperand(base);
    inst->addOperand(index);
    inst->setElemType(elemType);
    return append(std::move(inst));
  }

  // -- Arithmetic ---------------------------------------------------------------
  Instruction* createBinary(Opcode op, Value* lhs, Value* rhs) {
    Type type = Type::Void;
    if (isIntBinary(op)) {
      RF_CHECK(lhs->type() == Type::I64 && rhs->type() == Type::I64,
               "integer binary operands must be i64");
      type = Type::I64;
    } else if (isFloatBinary(op)) {
      RF_CHECK(lhs->type() == Type::F64 && rhs->type() == Type::F64,
               "float binary operands must be f64");
      type = Type::F64;
    } else {
      RF_UNREACHABLE("createBinary with non-binary opcode");
    }
    auto inst = make(op, type);
    inst->addOperand(lhs);
    inst->addOperand(rhs);
    return append(std::move(inst));
  }
  Instruction* createFAbs(Value* v) { return unary(Opcode::FAbs, Type::F64, v); }
  Instruction* createFSqrt(Value* v) { return unary(Opcode::FSqrt, Type::F64, v); }

  // -- Compare / select ----------------------------------------------------------
  Instruction* createICmp(ICmpPred pred, Value* lhs, Value* rhs) {
    RF_CHECK(lhs->type() == Type::I64 && rhs->type() == Type::I64,
             "icmp operands must be i64");
    auto inst = make(Opcode::ICmp, Type::I1);
    inst->addOperand(lhs);
    inst->addOperand(rhs);
    inst->setICmpPred(pred);
    return append(std::move(inst));
  }
  Instruction* createFCmp(FCmpPred pred, Value* lhs, Value* rhs) {
    RF_CHECK(lhs->type() == Type::F64 && rhs->type() == Type::F64,
             "fcmp operands must be f64");
    auto inst = make(Opcode::FCmp, Type::I1);
    inst->addOperand(lhs);
    inst->addOperand(rhs);
    inst->setFCmpPred(pred);
    return append(std::move(inst));
  }
  Instruction* createSelect(Value* cond, Value* ifTrue, Value* ifFalse) {
    RF_CHECK(cond->type() == Type::I1, "select condition must be i1");
    RF_CHECK(ifTrue->type() == ifFalse->type(), "select arms must agree");
    auto inst = make(Opcode::Select, ifTrue->type());
    inst->addOperand(cond);
    inst->addOperand(ifTrue);
    inst->addOperand(ifFalse);
    return append(std::move(inst));
  }

  // -- Conversions -------------------------------------------------------------
  Instruction* createZExt(Value* v) {
    RF_CHECK(v->type() == Type::I1, "zext source must be i1");
    return unary(Opcode::ZExt, Type::I64, v);
  }
  Instruction* createSIToFP(Value* v) {
    RF_CHECK(v->type() == Type::I64, "sitofp source must be i64");
    return unary(Opcode::SIToFP, Type::F64, v);
  }
  Instruction* createFPToSI(Value* v) {
    RF_CHECK(v->type() == Type::F64, "fptosi source must be f64");
    return unary(Opcode::FPToSI, Type::I64, v);
  }
  Instruction* createBitcastI2F(Value* v) {
    RF_CHECK(v->type() == Type::I64, "bitcast.i2f source must be i64");
    return unary(Opcode::BitcastI2F, Type::F64, v);
  }
  Instruction* createBitcastF2I(Value* v) {
    RF_CHECK(v->type() == Type::F64, "bitcast.f2i source must be f64");
    return unary(Opcode::BitcastF2I, Type::I64, v);
  }

  // -- Calls and phis -------------------------------------------------------------
  Instruction* createCall(Function* callee, const std::vector<Value*>& args) {
    RF_CHECK(callee != nullptr, "call to null function");
    RF_CHECK(args.size() == callee->params().size(),
             "call argument count mismatch for " + callee->name());
    auto inst = make(Opcode::Call, callee->returnType());
    for (Value* a : args) inst->addOperand(a);
    inst->setCallee(callee);
    return append(std::move(inst));
  }
  /// Creates an empty phi at the *front* of the current block.
  Instruction* createPhi(Type type) {
    auto inst = make(Opcode::Phi, type);
    RF_CHECK(block_ != nullptr, "no insertion block");
    // Phis must stay grouped at the top of the block.
    std::size_t pos = 0;
    for (const auto& existing : block_->instructions()) {
      if (existing->opcode() != Opcode::Phi) break;
      ++pos;
    }
    return block_->insertAt(pos, std::move(inst));
  }

 private:
  std::unique_ptr<Instruction> make(Opcode op, Type type) {
    return std::make_unique<Instruction>(op, type);
  }
  Instruction* unary(Opcode op, Type type, Value* v) {
    auto inst = make(op, type);
    inst->addOperand(v);
    return append(std::move(inst));
  }
  Instruction* append(std::unique_ptr<Instruction> inst) {
    RF_CHECK(block_ != nullptr, "no insertion block");
    return block_->append(std::move(inst));
  }

  Module& module_;
  BasicBlock* block_ = nullptr;
};

}  // namespace refine::ir
