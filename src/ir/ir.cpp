#include "ir/ir.h"

#include <bit>

namespace refine::ir {

const char* opcodeName(Opcode op) noexcept {
  switch (op) {
    case Opcode::Ret: return "ret";
    case Opcode::Br: return "br";
    case Opcode::CondBr: return "condbr";
    case Opcode::Alloca: return "alloca";
    case Opcode::Load: return "load";
    case Opcode::Store: return "store";
    case Opcode::Gep: return "gep";
    case Opcode::Add: return "add";
    case Opcode::Sub: return "sub";
    case Opcode::Mul: return "mul";
    case Opcode::SDiv: return "sdiv";
    case Opcode::SRem: return "srem";
    case Opcode::And: return "and";
    case Opcode::Or: return "or";
    case Opcode::Xor: return "xor";
    case Opcode::Shl: return "shl";
    case Opcode::AShr: return "ashr";
    case Opcode::LShr: return "lshr";
    case Opcode::FAdd: return "fadd";
    case Opcode::FSub: return "fsub";
    case Opcode::FMul: return "fmul";
    case Opcode::FDiv: return "fdiv";
    case Opcode::FAbs: return "fabs";
    case Opcode::FSqrt: return "fsqrt";
    case Opcode::ICmp: return "icmp";
    case Opcode::FCmp: return "fcmp";
    case Opcode::Select: return "select";
    case Opcode::ZExt: return "zext";
    case Opcode::SIToFP: return "sitofp";
    case Opcode::FPToSI: return "fptosi";
    case Opcode::BitcastI2F: return "bitcast.i2f";
    case Opcode::BitcastF2I: return "bitcast.f2i";
    case Opcode::Call: return "call";
    case Opcode::Phi: return "phi";
  }
  return "?";
}

const char* predName(ICmpPred p) noexcept {
  switch (p) {
    case ICmpPred::EQ: return "eq";
    case ICmpPred::NE: return "ne";
    case ICmpPred::SLT: return "slt";
    case ICmpPred::SLE: return "sle";
    case ICmpPred::SGT: return "sgt";
    case ICmpPred::SGE: return "sge";
  }
  return "?";
}

const char* predName(FCmpPred p) noexcept {
  switch (p) {
    case FCmpPred::OEQ: return "oeq";
    case FCmpPred::ONE: return "one";
    case FCmpPred::OLT: return "olt";
    case FCmpPred::OLE: return "ole";
    case FCmpPred::OGT: return "ogt";
    case FCmpPred::OGE: return "oge";
  }
  return "?";
}

Instruction* BasicBlock::append(std::unique_ptr<Instruction> inst) {
  inst->setParent(this);
  instrs_.push_back(std::move(inst));
  return instrs_.back().get();
}

Instruction* BasicBlock::insertAt(std::size_t pos, std::unique_ptr<Instruction> inst) {
  RF_CHECK(pos <= instrs_.size(), "insert position out of range");
  inst->setParent(this);
  auto it = instrs_.insert(instrs_.begin() + static_cast<std::ptrdiff_t>(pos),
                           std::move(inst));
  return it->get();
}

void BasicBlock::erase(std::size_t pos) {
  RF_CHECK(pos < instrs_.size(), "erase position out of range");
  instrs_.erase(instrs_.begin() + static_cast<std::ptrdiff_t>(pos));
}

std::unique_ptr<Instruction> BasicBlock::detach(std::size_t pos) {
  RF_CHECK(pos < instrs_.size(), "detach position out of range");
  auto inst = std::move(instrs_[pos]);
  instrs_.erase(instrs_.begin() + static_cast<std::ptrdiff_t>(pos));
  inst->setParent(nullptr);
  return inst;
}

BasicBlock* Function::addBlock(std::string name) {
  blocks_.push_back(std::make_unique<BasicBlock>(std::move(name), this));
  return blocks_.back().get();
}

BasicBlock* Function::addBlockAfter(BasicBlock* after, std::string name) {
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    if (blocks_[i].get() == after) {
      auto it = blocks_.insert(blocks_.begin() + static_cast<std::ptrdiff_t>(i + 1),
                               std::make_unique<BasicBlock>(std::move(name), this));
      return it->get();
    }
  }
  RF_UNREACHABLE("addBlockAfter: anchor block not in function");
}

void Function::removeBlocksIf(const std::function<bool(BasicBlock*)>& dead) {
  std::erase_if(blocks_, [&](const std::unique_ptr<BasicBlock>& bb) {
    return dead(bb.get());
  });
}

ConstantInt* Module::constI64(std::int64_t v) {
  const std::uint64_t key = static_cast<std::uint64_t>(v);
  auto it = intConstantMap_.find(key);
  if (it != intConstantMap_.end() && it->second->type() == Type::I64) {
    return it->second;
  }
  intConstants_.push_back(std::make_unique<ConstantInt>(Type::I64, v));
  ConstantInt* c = intConstants_.back().get();
  intConstantMap_[key] = c;
  return c;
}

ConstantInt* Module::constI1(bool v) {
  // i1 constants are uniqued separately from i64 via a disjoint key space.
  const std::uint64_t key = 0xB001'0000'0000'0000ULL | (v ? 1 : 0);
  auto it = intConstantMap_.find(key);
  if (it != intConstantMap_.end()) return it->second;
  intConstants_.push_back(std::make_unique<ConstantInt>(Type::I1, v ? 1 : 0));
  ConstantInt* c = intConstants_.back().get();
  intConstantMap_[key] = c;
  return c;
}

ConstantFloat* Module::constF64(double v) {
  const std::uint64_t key = std::bit_cast<std::uint64_t>(v);
  auto it = floatConstantMap_.find(key);
  if (it != floatConstantMap_.end()) return it->second;
  floatConstants_.push_back(std::make_unique<ConstantFloat>(v));
  ConstantFloat* c = floatConstants_.back().get();
  floatConstantMap_[key] = c;
  return c;
}

GlobalVar* Module::addGlobal(std::string name, Type elemType, std::uint64_t count) {
  RF_CHECK(findGlobal(name) == nullptr, "duplicate global: " + name);
  globals_.push_back(std::make_unique<GlobalVar>(std::move(name), elemType, count));
  return globals_.back().get();
}

GlobalVar* Module::findGlobal(std::string_view name) const noexcept {
  for (const auto& g : globals_) {
    if (g->name() == name) return g.get();
  }
  return nullptr;
}

Function* Module::addFunction(std::string name, Type returnType, FunctionKind kind) {
  RF_CHECK(findFunction(name) == nullptr, "duplicate function: " + name);
  functions_.push_back(std::make_unique<Function>(std::move(name), returnType, kind));
  return functions_.back().get();
}

Function* Module::findFunction(std::string_view name) const noexcept {
  for (const auto& f : functions_) {
    if (f->name() == name) return f.get();
  }
  return nullptr;
}

std::uint64_t Module::internString(std::string s) {
  for (std::size_t i = 0; i < strings_.size(); ++i) {
    if (strings_[i] == s) return i;
  }
  strings_.push_back(std::move(s));
  return strings_.size() - 1;
}

}  // namespace refine::ir
