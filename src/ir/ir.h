// Core IR data structures: values, instructions, basic blocks, functions and
// modules.
//
// Design notes (mirroring LLVM where it matters to the paper):
//  * SSA form: instructions are values; mem2reg promotes allocas to SSA with
//    phi nodes. The IR "assumes an infinite number of virtual registers"
//    (paper Sec. 3.2) — register allocation happens only in the backend.
//  * Ownership is strictly hierarchical (Module -> Function -> BasicBlock ->
//    Instruction); all cross-references (operands, control-flow targets) are
//    non-owning raw pointers per the Core Guidelines convention.
//  * A single Instruction class with an opcode and auxiliary fields replaces
//    LLVM's class-per-opcode hierarchy; passes switch on Opcode.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "ir/type.h"
#include "support/check.h"

namespace refine::ir {

class Instruction;
class BasicBlock;
class Function;
class Module;

enum class ValueKind : std::uint8_t {
  Argument,
  ConstantInt,
  ConstantFloat,
  Global,
  Instruction,
};

/// Base of everything that can appear as an instruction operand.
class Value {
 public:
  Value(ValueKind kind, Type type) : kind_(kind), type_(type) {}
  virtual ~Value() = default;
  Value(const Value&) = delete;
  Value& operator=(const Value&) = delete;

  ValueKind kind() const noexcept { return kind_; }
  Type type() const noexcept { return type_; }

  bool isInstruction() const noexcept { return kind_ == ValueKind::Instruction; }
  bool isConstant() const noexcept {
    return kind_ == ValueKind::ConstantInt || kind_ == ValueKind::ConstantFloat;
  }

 private:
  ValueKind kind_;
  Type type_;
};

/// Formal parameter of a function.
class Argument : public Value {
 public:
  Argument(Type type, std::string name, unsigned index)
      : Value(ValueKind::Argument, type), name_(std::move(name)), index_(index) {}

  const std::string& name() const noexcept { return name_; }
  unsigned index() const noexcept { return index_; }

 private:
  std::string name_;
  unsigned index_;
};

/// Integer (i64 or i1) constant, uniqued per module.
class ConstantInt : public Value {
 public:
  ConstantInt(Type type, std::int64_t value)
      : Value(ValueKind::ConstantInt, type), value_(value) {}

  std::int64_t value() const noexcept { return value_; }

 private:
  std::int64_t value_;
};

/// f64 constant, uniqued per module by bit pattern.
class ConstantFloat : public Value {
 public:
  explicit ConstantFloat(double value)
      : Value(ValueKind::ConstantFloat, Type::F64), value_(value) {}

  double value() const noexcept { return value_; }

 private:
  double value_;
};

/// Module-level array (or scalar, count == 1) in the data segment.
/// Its Value type is Ptr: using a global as an operand yields its address.
class GlobalVar : public Value {
 public:
  GlobalVar(std::string name, Type elemType, std::uint64_t count)
      : Value(ValueKind::Global, Type::Ptr),
        name_(std::move(name)),
        elemType_(elemType),
        count_(count) {}

  const std::string& name() const noexcept { return name_; }
  Type elemType() const noexcept { return elemType_; }
  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t sizeBytes() const noexcept { return count_ * storeSize(elemType_); }

  /// Optional initial words (bit patterns); zero-filled when shorter.
  const std::vector<std::uint64_t>& init() const noexcept { return init_; }
  void setInit(std::vector<std::uint64_t> words) { init_ = std::move(words); }

 private:
  std::string name_;
  Type elemType_;
  std::uint64_t count_;
  std::vector<std::uint64_t> init_;
};

enum class Opcode : std::uint8_t {
  // Terminators
  Ret,      // ret [value]
  Br,       // br label
  CondBr,   // br i1 cond, ifTrue, ifFalse
  // Memory
  Alloca,   // stack allocation: elemType x arrayCount
  Load,     // load T, ptr
  Store,    // store T value, ptr
  Gep,      // ptr + index * storeSize(elemType)
  // Integer arithmetic (i64)
  Add, Sub, Mul, SDiv, SRem,
  And, Or, Xor, Shl, AShr, LShr,
  // Floating-point arithmetic (f64)
  FAdd, FSub, FMul, FDiv,
  // Unary floating-point intrinsics
  FAbs, FSqrt,
  // Comparison and selection
  ICmp, FCmp, Select,
  // Conversions
  ZExt,       // i1 -> i64
  SIToFP,     // i64 -> f64
  FPToSI,     // f64 -> i64 (truncating)
  BitcastI2F, // i64 bits -> f64
  BitcastF2I, // f64 bits -> i64
  // Other
  Call,
  Phi,
};

enum class ICmpPred : std::uint8_t { EQ, NE, SLT, SLE, SGT, SGE };
enum class FCmpPred : std::uint8_t { OEQ, ONE, OLT, OLE, OGT, OGE };

const char* opcodeName(Opcode op) noexcept;
const char* predName(ICmpPred p) noexcept;
const char* predName(FCmpPred p) noexcept;

constexpr bool isTerminator(Opcode op) noexcept {
  return op == Opcode::Ret || op == Opcode::Br || op == Opcode::CondBr;
}
constexpr bool isIntBinary(Opcode op) noexcept {
  return op >= Opcode::Add && op <= Opcode::LShr;
}
constexpr bool isFloatBinary(Opcode op) noexcept {
  return op >= Opcode::FAdd && op <= Opcode::FDiv;
}

/// One IR instruction. Operand meaning by opcode:
///   Ret: [value?]              CondBr: [cond] + targets   Br: targets only
///   Load: [ptr]                Store: [value, ptr]
///   Gep: [ptr, index]          binaries: [lhs, rhs]
///   FAbs/FSqrt/casts: [src]    ICmp/FCmp: [lhs, rhs]
///   Select: [cond, ifTrue, ifFalse]
///   Call: arguments (callee held separately)
///   Phi: incoming values (blocks held in phiBlocks(), same order)
class Instruction : public Value {
 public:
  Instruction(Opcode op, Type type) : Value(ValueKind::Instruction, type), op_(op) {}

  Opcode opcode() const noexcept { return op_; }

  const std::vector<Value*>& operands() const noexcept { return operands_; }
  Value* operand(std::size_t i) const {
    RF_CHECK(i < operands_.size(), "operand index out of range");
    return operands_[i];
  }
  void addOperand(Value* v) { operands_.push_back(v); }
  void setOperand(std::size_t i, Value* v) {
    RF_CHECK(i < operands_.size(), "operand index out of range");
    operands_[i] = v;
  }
  std::size_t numOperands() const noexcept { return operands_.size(); }

  /// Replaces every use of `from` with `to` among this instruction's operands.
  void replaceUsesOf(Value* from, Value* to) {
    for (auto& op : operands_) {
      if (op == from) op = to;
    }
  }

  // -- Control flow (Br/CondBr) ------------------------------------------
  BasicBlock* target(unsigned i) const {
    RF_CHECK(i < 2 && targets_[i] != nullptr, "missing branch target");
    return targets_[i];
  }
  void setTarget(unsigned i, BasicBlock* bb) {
    RF_CHECK(i < 2, "branch target index out of range");
    targets_[i] = bb;
  }

  // -- Compare predicates --------------------------------------------------
  ICmpPred icmpPred() const noexcept { return icmpPred_; }
  void setICmpPred(ICmpPred p) noexcept { icmpPred_ = p; }
  FCmpPred fcmpPred() const noexcept { return fcmpPred_; }
  void setFCmpPred(FCmpPred p) noexcept { fcmpPred_ = p; }

  // -- Alloca / Gep ---------------------------------------------------------
  Type elemType() const noexcept { return elemType_; }
  void setElemType(Type t) noexcept { elemType_ = t; }
  std::uint64_t allocaCount() const noexcept { return allocaCount_; }
  void setAllocaCount(std::uint64_t n) noexcept { allocaCount_ = n; }

  // -- Call ------------------------------------------------------------------
  Function* callee() const noexcept { return callee_; }
  void setCallee(Function* f) noexcept { callee_ = f; }

  // -- Phi --------------------------------------------------------------------
  const std::vector<BasicBlock*>& phiBlocks() const noexcept { return phiBlocks_; }
  void addPhiIncoming(Value* v, BasicBlock* from) {
    addOperand(v);
    phiBlocks_.push_back(from);
  }
  void setPhiBlock(std::size_t i, BasicBlock* bb) {
    RF_CHECK(i < phiBlocks_.size(), "phi block index out of range");
    phiBlocks_[i] = bb;
  }
  /// Shrinks a phi to its first `n` incomings (after in-place compaction).
  void truncatePhi(std::size_t n) {
    RF_CHECK(op_ == Opcode::Phi, "truncatePhi on non-phi");
    RF_CHECK(n <= phiBlocks_.size(), "truncatePhi growing a phi");
    operands_.resize(n);
    phiBlocks_.resize(n);
  }
  /// Removes every incoming entry whose predecessor is `from`.
  void removePhiIncomingFor(const BasicBlock* from) {
    RF_CHECK(op_ == Opcode::Phi, "removePhiIncomingFor on non-phi");
    std::size_t out = 0;
    for (std::size_t i = 0; i < phiBlocks_.size(); ++i) {
      if (phiBlocks_[i] != from) {
        operands_[out] = operands_[i];
        phiBlocks_[out] = phiBlocks_[i];
        ++out;
      }
    }
    operands_.resize(out);
    phiBlocks_.resize(out);
  }

  BasicBlock* parent() const noexcept { return parent_; }
  void setParent(BasicBlock* bb) noexcept { parent_ = bb; }

  bool isTerminator() const noexcept { return ir::isTerminator(op_); }
  bool producesValue() const noexcept { return type() != Type::Void; }

 private:
  Opcode op_;
  std::vector<Value*> operands_;
  BasicBlock* targets_[2] = {nullptr, nullptr};
  ICmpPred icmpPred_ = ICmpPred::EQ;
  FCmpPred fcmpPred_ = FCmpPred::OEQ;
  Type elemType_ = Type::Void;
  std::uint64_t allocaCount_ = 1;
  Function* callee_ = nullptr;
  std::vector<BasicBlock*> phiBlocks_;
  BasicBlock* parent_ = nullptr;
};

/// A straight-line sequence of instructions ending in one terminator.
class BasicBlock {
 public:
  BasicBlock(std::string name, Function* parent)
      : name_(std::move(name)), parent_(parent) {}

  const std::string& name() const noexcept { return name_; }
  Function* parent() const noexcept { return parent_; }

  const std::vector<std::unique_ptr<Instruction>>& instructions() const noexcept {
    return instrs_;
  }

  /// Appends an instruction (takes ownership) and returns it.
  Instruction* append(std::unique_ptr<Instruction> inst);

  /// Inserts before position `pos` (0 == front).
  Instruction* insertAt(std::size_t pos, std::unique_ptr<Instruction> inst);

  /// Removes and destroys the instruction at `pos`.
  void erase(std::size_t pos);

  /// Detaches the instruction at `pos` without destroying it.
  std::unique_ptr<Instruction> detach(std::size_t pos);

  /// The terminator, or nullptr if the block is still under construction.
  Instruction* terminator() const noexcept {
    if (instrs_.empty() || !instrs_.back()->isTerminator()) return nullptr;
    return instrs_.back().get();
  }

  bool empty() const noexcept { return instrs_.empty(); }
  std::size_t size() const noexcept { return instrs_.size(); }

 private:
  std::string name_;
  Function* parent_;
  std::vector<std::unique_ptr<Instruction>> instrs_;
};

/// Function linkage: defined in this module or provided by the runtime.
enum class FunctionKind : std::uint8_t { Defined, External };

class Function {
 public:
  Function(std::string name, Type returnType, FunctionKind kind)
      : name_(std::move(name)), returnType_(returnType), kind_(kind) {}

  const std::string& name() const noexcept { return name_; }
  Type returnType() const noexcept { return returnType_; }
  FunctionKind kind() const noexcept { return kind_; }
  bool isExternal() const noexcept { return kind_ == FunctionKind::External; }

  Argument* addParam(Type type, std::string name) {
    params_.push_back(std::make_unique<Argument>(
        type, std::move(name), static_cast<unsigned>(params_.size())));
    return params_.back().get();
  }
  const std::vector<std::unique_ptr<Argument>>& params() const noexcept {
    return params_;
  }

  BasicBlock* addBlock(std::string name);
  /// Inserts a new block immediately after `after`.
  BasicBlock* addBlockAfter(BasicBlock* after, std::string name);
  const std::vector<std::unique_ptr<BasicBlock>>& blocks() const noexcept {
    return blocks_;
  }
  BasicBlock* entry() const {
    RF_CHECK(!blocks_.empty(), "function has no blocks: " + name_);
    return blocks_.front().get();
  }

  /// Removes blocks for which `dead` returns true (used by SimplifyCFG/DCE).
  void removeBlocksIf(const std::function<bool(BasicBlock*)>& dead);

 private:
  std::string name_;
  Type returnType_;
  FunctionKind kind_;
  std::vector<std::unique_ptr<Argument>> params_;
  std::vector<std::unique_ptr<BasicBlock>> blocks_;
};

/// A whole translation unit: globals, string table, functions, constants.
class Module {
 public:
  Module() = default;

  // -- Constants (uniqued) ---------------------------------------------------
  ConstantInt* constI64(std::int64_t v);
  ConstantInt* constI1(bool v);
  ConstantFloat* constF64(double v);

  // -- Globals ------------------------------------------------------------------
  GlobalVar* addGlobal(std::string name, Type elemType, std::uint64_t count);
  GlobalVar* findGlobal(std::string_view name) const noexcept;
  const std::vector<std::unique_ptr<GlobalVar>>& globals() const noexcept {
    return globals_;
  }

  // -- Functions -----------------------------------------------------------------
  Function* addFunction(std::string name, Type returnType, FunctionKind kind);
  Function* findFunction(std::string_view name) const noexcept;
  const std::vector<std::unique_ptr<Function>>& functions() const noexcept {
    return functions_;
  }

  // -- String literals (for print_str) ----------------------------------------
  /// Interns a string literal, returning its index in the string table.
  std::uint64_t internString(std::string s);
  const std::vector<std::string>& strings() const noexcept { return strings_; }

 private:
  std::vector<std::unique_ptr<ConstantInt>> intConstants_;
  std::unordered_map<std::uint64_t, ConstantInt*> intConstantMap_;
  std::vector<std::unique_ptr<ConstantFloat>> floatConstants_;
  std::unordered_map<std::uint64_t, ConstantFloat*> floatConstantMap_;
  std::vector<std::unique_ptr<GlobalVar>> globals_;
  std::vector<std::unique_ptr<Function>> functions_;
  std::vector<std::string> strings_;
};

}  // namespace refine::ir
