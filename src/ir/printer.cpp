#include "ir/printer.h"

#include <sstream>
#include <unordered_map>

#include "support/strings.h"

namespace refine::ir {

namespace {

/// Assigns %0, %1, ... names to instructions and arguments of a function.
class Namer {
 public:
  explicit Namer(const Function& fn) {
    for (const auto& arg : fn.params()) {
      names_[arg.get()] = "%" + arg->name();
    }
    unsigned next = 0;
    for (const auto& bb : fn.blocks()) {
      for (const auto& inst : bb->instructions()) {
        if (inst->producesValue()) {
          names_[inst.get()] = strf("%%%u", next++);
        }
      }
    }
  }

  std::string operandText(const Value* v) const {
    switch (v->kind()) {
      case ValueKind::ConstantInt: {
        const auto* c = static_cast<const ConstantInt*>(v);
        return strf("%lld", static_cast<long long>(c->value()));
      }
      case ValueKind::ConstantFloat: {
        const auto* c = static_cast<const ConstantFloat*>(v);
        return strf("%.17g", c->value());
      }
      case ValueKind::Global: {
        const auto* g = static_cast<const GlobalVar*>(v);
        return "@" + g->name();
      }
      default: {
        auto it = names_.find(v);
        return it == names_.end() ? "%<unnamed>" : it->second;
      }
    }
  }

 private:
  std::unordered_map<const Value*, std::string> names_;
};

void printInstruction(std::ostringstream& os, const Instruction& inst,
                      const Namer& namer) {
  os << "  ";
  if (inst.producesValue()) {
    os << namer.operandText(&inst) << " = ";
  }
  const Opcode op = inst.opcode();
  switch (op) {
    case Opcode::Ret:
      os << "ret";
      if (inst.numOperands() == 1) {
        os << ' ' << typeName(inst.operand(0)->type()) << ' '
           << namer.operandText(inst.operand(0));
      } else {
        os << " void";
      }
      break;
    case Opcode::Br:
      os << "br label %" << inst.target(0)->name();
      break;
    case Opcode::CondBr:
      os << "br i1 " << namer.operandText(inst.operand(0)) << ", label %"
         << inst.target(0)->name() << ", label %" << inst.target(1)->name();
      break;
    case Opcode::Alloca:
      os << "alloca " << typeName(inst.elemType());
      if (inst.allocaCount() != 1) os << " x " << inst.allocaCount();
      break;
    case Opcode::Load:
      os << "load " << typeName(inst.type()) << ", ptr "
         << namer.operandText(inst.operand(0));
      break;
    case Opcode::Store:
      os << "store " << typeName(inst.operand(0)->type()) << ' '
         << namer.operandText(inst.operand(0)) << ", ptr "
         << namer.operandText(inst.operand(1));
      break;
    case Opcode::Gep:
      os << "gep " << typeName(inst.elemType()) << ", ptr "
         << namer.operandText(inst.operand(0)) << ", i64 "
         << namer.operandText(inst.operand(1));
      break;
    case Opcode::ICmp:
      os << "icmp " << predName(inst.icmpPred()) << " i64 "
         << namer.operandText(inst.operand(0)) << ", "
         << namer.operandText(inst.operand(1));
      break;
    case Opcode::FCmp:
      os << "fcmp " << predName(inst.fcmpPred()) << " f64 "
         << namer.operandText(inst.operand(0)) << ", "
         << namer.operandText(inst.operand(1));
      break;
    case Opcode::Select:
      os << "select i1 " << namer.operandText(inst.operand(0)) << ", "
         << typeName(inst.type()) << ' ' << namer.operandText(inst.operand(1))
         << ", " << namer.operandText(inst.operand(2));
      break;
    case Opcode::Call: {
      os << "call " << typeName(inst.type()) << " @" << inst.callee()->name()
         << '(';
      for (std::size_t i = 0; i < inst.numOperands(); ++i) {
        if (i != 0) os << ", ";
        os << typeName(inst.operand(i)->type()) << ' '
           << namer.operandText(inst.operand(i));
      }
      os << ')';
      break;
    }
    case Opcode::Phi: {
      os << "phi " << typeName(inst.type()) << ' ';
      for (std::size_t i = 0; i < inst.numOperands(); ++i) {
        if (i != 0) os << ", ";
        os << "[ " << namer.operandText(inst.operand(i)) << ", %"
           << inst.phiBlocks()[i]->name() << " ]";
      }
      break;
    }
    default: {
      os << opcodeName(op) << ' ' << typeName(inst.type());
      for (std::size_t i = 0; i < inst.numOperands(); ++i) {
        os << (i == 0 ? " " : ", ") << namer.operandText(inst.operand(i));
      }
      break;
    }
  }
  os << '\n';
}

}  // namespace

std::string printFunction(const Function& fn) {
  std::ostringstream os;
  if (fn.isExternal()) {
    os << "declare " << typeName(fn.returnType()) << " @" << fn.name() << '(';
    for (std::size_t i = 0; i < fn.params().size(); ++i) {
      if (i != 0) os << ", ";
      os << typeName(fn.params()[i]->type());
    }
    os << ")\n";
    return os.str();
  }
  Namer namer(fn);
  os << "define " << typeName(fn.returnType()) << " @" << fn.name() << '(';
  for (std::size_t i = 0; i < fn.params().size(); ++i) {
    if (i != 0) os << ", ";
    os << typeName(fn.params()[i]->type()) << " %" << fn.params()[i]->name();
  }
  os << ") {\n";
  bool first = true;
  for (const auto& bb : fn.blocks()) {
    if (!first) os << '\n';
    first = false;
    os << bb->name() << ":\n";
    for (const auto& inst : bb->instructions()) {
      printInstruction(os, *inst, namer);
    }
  }
  os << "}\n";
  return os.str();
}

std::string printModule(const Module& module) {
  std::ostringstream os;
  for (const auto& g : module.globals()) {
    os << '@' << g->name() << " = global " << typeName(g->elemType()) << " x "
       << g->count() << '\n';
  }
  if (!module.globals().empty()) os << '\n';
  for (const auto& fn : module.functions()) {
    os << printFunction(*fn) << '\n';
  }
  return os.str();
}

}  // namespace refine::ir
