#include "ir/cfg.h"

#include <algorithm>
#include <unordered_set>

namespace refine::ir {

std::vector<BasicBlock*> successors(const BasicBlock* bb) {
  std::vector<BasicBlock*> out;
  const Instruction* term = bb->terminator();
  if (term == nullptr) return out;
  switch (term->opcode()) {
    case Opcode::Br:
      out.push_back(term->target(0));
      break;
    case Opcode::CondBr:
      out.push_back(term->target(0));
      if (term->target(1) != term->target(0)) out.push_back(term->target(1));
      break;
    case Opcode::Ret:
      break;
    default:
      RF_UNREACHABLE("non-terminator at block end");
  }
  return out;
}

std::unordered_map<const BasicBlock*, std::vector<BasicBlock*>> predecessorMap(
    const Function& fn) {
  std::unordered_map<const BasicBlock*, std::vector<BasicBlock*>> preds;
  for (const auto& bb : fn.blocks()) preds[bb.get()];  // ensure every key exists
  for (const auto& bb : fn.blocks()) {
    for (BasicBlock* succ : successors(bb.get())) {
      preds[succ].push_back(bb.get());
    }
  }
  return preds;
}

namespace {
void postOrderVisit(BasicBlock* bb, std::unordered_set<BasicBlock*>& seen,
                    std::vector<BasicBlock*>& order) {
  if (!seen.insert(bb).second) return;
  for (BasicBlock* succ : successors(bb)) postOrderVisit(succ, seen, order);
  order.push_back(bb);
}
}  // namespace

std::vector<BasicBlock*> reversePostOrder(const Function& fn) {
  std::vector<BasicBlock*> order;
  if (fn.blocks().empty()) return order;
  std::unordered_set<BasicBlock*> seen;
  postOrderVisit(fn.entry(), seen, order);
  std::reverse(order.begin(), order.end());
  return order;
}

std::vector<BasicBlock*> unreachableBlocks(const Function& fn) {
  std::unordered_set<BasicBlock*> reachable;
  for (BasicBlock* bb : reversePostOrder(fn)) reachable.insert(bb);
  std::vector<BasicBlock*> out;
  for (const auto& bb : fn.blocks()) {
    if (!reachable.contains(bb.get())) out.push_back(bb.get());
  }
  return out;
}

}  // namespace refine::ir
