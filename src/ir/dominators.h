// Dominator tree and dominance frontiers (Cooper–Harvey–Kennedy algorithm).
//
// Used by mem2reg for phi placement and by the verifier for SSA dominance
// checks. Only blocks reachable from entry are represented.
#pragma once

#include <unordered_map>
#include <vector>

#include "ir/ir.h"

namespace refine::ir {

class DominatorTree {
 public:
  explicit DominatorTree(const Function& fn);

  /// Immediate dominator, or nullptr for the entry block / unreachable blocks.
  BasicBlock* idom(const BasicBlock* bb) const;

  /// True when `a` dominates `b` (reflexive).
  bool dominates(const BasicBlock* a, const BasicBlock* b) const;

  /// Dominance frontier of `bb`.
  const std::vector<BasicBlock*>& frontier(const BasicBlock* bb) const;

  /// True if the block is reachable from entry.
  bool isReachable(const BasicBlock* bb) const {
    return rpoIndex_.contains(bb);
  }

  /// Reverse post-order used internally (reachable blocks only).
  const std::vector<BasicBlock*>& order() const noexcept { return order_; }

 private:
  std::vector<BasicBlock*> order_;
  std::unordered_map<const BasicBlock*, std::size_t> rpoIndex_;
  std::unordered_map<const BasicBlock*, BasicBlock*> idom_;
  std::unordered_map<const BasicBlock*, std::vector<BasicBlock*>> frontier_;
  std::vector<BasicBlock*> emptyFrontier_;
};

}  // namespace refine::ir
