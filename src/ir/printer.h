// Textual IR printing, in an LLVM-flavoured syntax.
//
// Used by tests (golden strings), diagnostics, and the codegen-interference
// example that reproduces the paper's Listing 1/2 comparison.
#pragma once

#include <string>

#include "ir/ir.h"

namespace refine::ir {

/// Prints a whole module.
std::string printModule(const Module& module);

/// Prints one function (definitions only; externals get a `declare` line).
std::string printFunction(const Function& fn);

}  // namespace refine::ir
