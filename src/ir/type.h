// Type system of the REFINE intermediate representation.
//
// The IR is deliberately small (like the subset of LLVM IR the paper's
// benchmarks exercise): void, i1 (booleans from comparisons), i64, f64 and
// opaque pointers. All in-memory scalars occupy 8 bytes, which keeps the
// data layout trivial and the VM word-oriented.
#pragma once

#include <cstdint>
#include <string>

namespace refine::ir {

enum class Type : std::uint8_t {
  Void,
  I1,
  I64,
  F64,
  Ptr,
};

/// Size in bytes of a value of type `t` when stored in memory.
constexpr std::uint64_t storeSize(Type t) noexcept {
  return t == Type::Void ? 0 : 8;
}

/// Number of architecturally meaningful bits in a value of type `t`
/// (the fault model flips a uniformly chosen bit among these).
constexpr unsigned bitWidth(Type t) noexcept {
  switch (t) {
    case Type::Void: return 0;
    case Type::I1: return 1;
    case Type::I64:
    case Type::F64:
    case Type::Ptr: return 64;
  }
  return 0;
}

inline std::string typeName(Type t) {
  switch (t) {
    case Type::Void: return "void";
    case Type::I1: return "i1";
    case Type::I64: return "i64";
    case Type::F64: return "f64";
    case Type::Ptr: return "ptr";
  }
  return "?";
}

constexpr bool isFloat(Type t) noexcept { return t == Type::F64; }
constexpr bool isInteger(Type t) noexcept { return t == Type::I1 || t == Type::I64; }

}  // namespace refine::ir
