// Registry of runtime (external) functions available to programs.
//
// These model the libc/libm subset the paper's benchmarks rely on. The
// frontend declares them, the IR interpreter evaluates them natively, and
// the backend lowers calls to them into VM syscalls.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "ir/type.h"

namespace refine::ir {

enum class RuntimeFn : std::uint8_t {
  PrintI64,  // print_i64(i64): prints decimal + newline
  PrintF64,  // print_f64(f64): prints "%.6e" + newline
  PrintStr,  // print_str(i64 string-table index): prints string + newline
  Exp,       // exp(f64) -> f64
  Log,       // log(f64) -> f64
  Sin,       // sin(f64) -> f64
  Cos,       // cos(f64) -> f64
  Pow,       // pow(f64, f64) -> f64
  Floor,     // floor(f64) -> f64
  // Fault-tolerance check hooks (src/opt/protect.cpp). Both trap with the
  // distinct DetectedByCheck code instead of returning when the redundant
  // copies disagree, so a campaign classifies the trial as Detected.
  AssertEq,  // fi_assert_eq(i64, i64): traps DetectedByCheck on mismatch
  Vote,      // fi_vote(i64, i64, i64) -> i64: majority of three copies;
             // traps DetectedByCheck when all three disagree
};

struct RuntimeFnInfo {
  RuntimeFn fn;
  const char* name;
  Type returnType;
  std::vector<Type> paramTypes;
};

/// All runtime functions, in RuntimeFn order.
const std::vector<RuntimeFnInfo>& runtimeFunctions();

/// Lookup by name; nullopt when `name` is not a runtime function.
std::optional<RuntimeFn> findRuntimeFn(std::string_view name);

/// Info for one runtime function.
const RuntimeFnInfo& runtimeFnInfo(RuntimeFn fn);

}  // namespace refine::ir
