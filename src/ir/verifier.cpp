#include "ir/verifier.h"

#include <unordered_map>
#include <unordered_set>

#include "ir/cfg.h"
#include "ir/dominators.h"
#include "support/strings.h"

namespace refine::ir {

namespace {

class FunctionVerifier {
 public:
  FunctionVerifier(const Function& fn, std::vector<std::string>& problems)
      : fn_(fn), problems_(problems), domtree_(fn), preds_(predecessorMap(fn)) {
    // Record definition position of every instruction for same-block checks.
    for (const auto& bb : fn.blocks()) {
      std::size_t pos = 0;
      for (const auto& inst : bb->instructions()) {
        defPos_[inst.get()] = {bb.get(), pos++};
      }
    }
    for (const auto& arg : fn.params()) args_.insert(arg.get());
  }

  void run() {
    for (const auto& bb : fn_.blocks()) verifyBlock(*bb);
  }

 private:
  void problem(const BasicBlock& bb, const std::string& what) {
    problems_.push_back("@" + fn_.name() + "/%" + bb.name() + ": " + what);
  }

  void verifyBlock(const BasicBlock& bb) {
    if (bb.empty() || !bb.instructions().back()->isTerminator()) {
      problem(bb, "block does not end with a terminator");
    }
    bool seenNonPhi = false;
    for (std::size_t i = 0; i < bb.size(); ++i) {
      const Instruction& inst = *bb.instructions()[i];
      if (inst.isTerminator() && i + 1 != bb.size()) {
        problem(bb, "terminator in the middle of a block");
      }
      if (inst.opcode() == Opcode::Phi) {
        if (seenNonPhi) problem(bb, "phi after non-phi instruction");
        verifyPhi(bb, inst);
      } else {
        seenNonPhi = true;
      }
      if (inst.opcode() == Opcode::Alloca && &bb != fn_.entry()) {
        problem(bb, "alloca outside the entry block");
      }
      verifyTypes(bb, inst);
      verifyUses(bb, inst, i);
    }
  }

  void verifyPhi(const BasicBlock& bb, const Instruction& phi) {
    const auto& ps = preds_.at(&bb);
    if (phi.numOperands() != ps.size()) {
      problem(bb, strf("phi has %zu incoming values but block has %zu preds",
                       phi.numOperands(), ps.size()));
      return;
    }
    std::unordered_set<const BasicBlock*> predSet(ps.begin(), ps.end());
    for (const BasicBlock* in : phi.phiBlocks()) {
      if (!predSet.contains(in)) {
        problem(bb, "phi incoming block %" + in->name() + " is not a predecessor");
      }
    }
    for (std::size_t i = 0; i < phi.numOperands(); ++i) {
      if (phi.operand(i)->type() != phi.type()) {
        problem(bb, "phi incoming value type mismatch");
      }
    }
  }

  void verifyTypes(const BasicBlock& bb, const Instruction& inst) {
    auto expectOperand = [&](std::size_t i, Type t) {
      if (inst.numOperands() <= i || inst.operand(i)->type() != t) {
        problem(bb, strf("%s operand %zu is not %s", opcodeName(inst.opcode()),
                         i, typeName(t).c_str()));
      }
    };
    switch (inst.opcode()) {
      case Opcode::Load:
      case Opcode::Gep:
        expectOperand(0, Type::Ptr);
        if (inst.opcode() == Opcode::Gep) expectOperand(1, Type::I64);
        break;
      case Opcode::Store:
        expectOperand(1, Type::Ptr);
        break;
      case Opcode::CondBr:
      case Opcode::Select:
        expectOperand(0, Type::I1);
        break;
      case Opcode::ICmp:
        expectOperand(0, Type::I64);
        expectOperand(1, Type::I64);
        break;
      case Opcode::FCmp:
        expectOperand(0, Type::F64);
        expectOperand(1, Type::F64);
        break;
      default:
        if (isIntBinary(inst.opcode())) {
          expectOperand(0, Type::I64);
          expectOperand(1, Type::I64);
        } else if (isFloatBinary(inst.opcode())) {
          expectOperand(0, Type::F64);
          expectOperand(1, Type::F64);
        }
        break;
    }
    if (inst.opcode() == Opcode::Ret) {
      const bool wantsValue = fn_.returnType() != Type::Void;
      if (wantsValue && (inst.numOperands() != 1 ||
                         inst.operand(0)->type() != fn_.returnType())) {
        problem(bb, "ret value missing or mistyped");
      }
      if (!wantsValue && inst.numOperands() != 0) {
        problem(bb, "ret with value in void function");
      }
    }
  }

  void verifyUses(const BasicBlock& bb, const Instruction& inst, std::size_t pos) {
    for (std::size_t i = 0; i < inst.numOperands(); ++i) {
      const Value* v = inst.operand(i);
      if (v->isConstant() || v->kind() == ValueKind::Global) continue;
      if (args_.contains(v)) continue;
      auto it = defPos_.find(v);
      if (it == defPos_.end()) {
        problem(bb, strf("%s uses a value defined outside this function",
                         opcodeName(inst.opcode())));
        continue;
      }
      const auto [defBlock, defIndex] = it->second;
      if (!domtree_.isReachable(&bb)) continue;  // dead code: skip dominance
      if (inst.opcode() == Opcode::Phi) {
        // Phi uses must dominate the incoming edge, i.e. the incoming block.
        const BasicBlock* incoming = inst.phiBlocks()[i];
        if (!domtree_.dominates(defBlock, incoming)) {
          problem(bb, "phi incoming value does not dominate incoming block");
        }
        continue;
      }
      if (defBlock == &bb) {
        if (defIndex >= pos) {
          problem(bb, strf("use of %s before its definition",
                           opcodeName(inst.opcode())));
        }
      } else if (!domtree_.dominates(defBlock, &bb)) {
        problem(bb, strf("%s uses a value whose definition does not dominate it",
                         opcodeName(inst.opcode())));
      }
    }
  }

  const Function& fn_;
  std::vector<std::string>& problems_;
  DominatorTree domtree_;
  std::unordered_map<const BasicBlock*, std::vector<BasicBlock*>> preds_;
  std::unordered_map<const Value*, std::pair<const BasicBlock*, std::size_t>> defPos_;
  std::unordered_set<const Value*> args_;
};

}  // namespace

std::vector<std::string> verifyModule(const Module& module) {
  std::vector<std::string> problems;
  for (const auto& fn : module.functions()) {
    if (fn->isExternal()) continue;
    if (fn->blocks().empty()) {
      problems.push_back("@" + fn->name() + ": defined function has no blocks");
      continue;
    }
    FunctionVerifier(*fn, problems).run();
  }
  return problems;
}

void verifyOrThrow(const Module& module) {
  const auto problems = verifyModule(module);
  if (problems.empty()) return;
  std::string all = "IR verification failed:";
  for (const auto& p : problems) {
    all += "\n  ";
    all += p;
  }
  throw CheckError(all);
}

}  // namespace refine::ir
