// Reference IR interpreter.
//
// Executes a module directly at IR level with the same data layout, trap
// rules and runtime-function semantics as the compiled VM path. Its purpose
// is differential testing: for any program, interpreted IR and compiled
// machine code must produce identical output and exit codes (fault-free).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "ir/ir.h"

namespace refine::ir {

enum class InterpTrap : std::uint8_t {
  None,
  BadMemory,      // load/store outside globals or stack segments
  DivByZero,      // integer division by zero or INT64_MIN / -1
  StackOverflow,  // stack pointer left the stack segment
  Timeout,        // instruction budget exhausted
  DetectedByCheck,  // fi_assert_eq/fi_vote caught divergent redundant state
};

struct InterpResult {
  bool trapped = false;
  InterpTrap trap = InterpTrap::None;
  std::int64_t exitCode = 0;
  std::string output;
  std::uint64_t instrCount = 0;
};

/// Formats exactly like the VM's print syscalls (shared oracle for tests).
std::string formatPrintI64(std::int64_t v);
std::string formatPrintF64(double v);

/// Append-style variants used on the execution hot paths (VM syscalls, the
/// interpreter's print runtime): format into a caller-owned buffer instead
/// of materializing a temporary std::string per print.
void formatPrintI64Into(std::string& out, std::int64_t v);
void formatPrintF64Into(std::string& out, double v);

/// Raw-buffer variants for allocation-free consumers (the VM's streaming
/// golden-output comparison): format into `buf` and return the byte count.
/// Buffer sizes: >= kPrintI64BufSize / kPrintF64BufSize bytes.
constexpr std::size_t kPrintI64BufSize = 24;  // 20 digits + sign + '\n' + NUL
constexpr std::size_t kPrintF64BufSize = 40;  // "%.6e" + sign + exp + '\n' + NUL
std::size_t formatPrintI64Buf(char* buf, std::int64_t v);
std::size_t formatPrintF64Buf(char* buf, double v);

/// Runs `entry` (default "main", no arguments). Throws CheckError on
/// structural problems (e.g. missing entry); runtime faults are reported in
/// the result, never thrown.
InterpResult interpret(const Module& module, std::string_view entry = "main",
                       std::uint64_t maxInstrs = 500'000'000);

}  // namespace refine::ir
