#include "ir/dominators.h"

#include "ir/cfg.h"

namespace refine::ir {

DominatorTree::DominatorTree(const Function& fn) {
  order_ = reversePostOrder(fn);
  for (std::size_t i = 0; i < order_.size(); ++i) rpoIndex_[order_[i]] = i;
  if (order_.empty()) return;

  auto preds = predecessorMap(fn);
  BasicBlock* entry = order_.front();
  idom_[entry] = entry;  // sentinel: entry's idom is itself during iteration

  // intersect() walks both fingers up the (partial) dominator tree.
  auto intersect = [&](BasicBlock* a, BasicBlock* b) {
    while (a != b) {
      while (rpoIndex_.at(a) > rpoIndex_.at(b)) a = idom_.at(a);
      while (rpoIndex_.at(b) > rpoIndex_.at(a)) b = idom_.at(b);
    }
    return a;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 1; i < order_.size(); ++i) {
      BasicBlock* bb = order_[i];
      BasicBlock* newIdom = nullptr;
      for (BasicBlock* p : preds.at(bb)) {
        if (!rpoIndex_.contains(p)) continue;        // unreachable predecessor
        if (!idom_.contains(p)) continue;            // not yet processed
        newIdom = newIdom == nullptr ? p : intersect(p, newIdom);
      }
      RF_CHECK(newIdom != nullptr, "reachable block without processed preds");
      auto it = idom_.find(bb);
      if (it == idom_.end() || it->second != newIdom) {
        idom_[bb] = newIdom;
        changed = true;
      }
    }
  }
  idom_[entry] = nullptr;  // replace sentinel

  // Dominance frontiers (CHK): join points with >= 2 predecessors.
  for (BasicBlock* bb : order_) {
    const auto& ps = preds.at(bb);
    std::size_t reachablePreds = 0;
    for (BasicBlock* p : ps) {
      if (rpoIndex_.contains(p)) ++reachablePreds;
    }
    if (reachablePreds < 2) continue;
    for (BasicBlock* p : ps) {
      if (!rpoIndex_.contains(p)) continue;
      BasicBlock* runner = p;
      while (runner != nullptr && runner != idom_.at(bb)) {
        auto& fr = frontier_[runner];
        if (fr.empty() || fr.back() != bb) fr.push_back(bb);
        runner = idom_.at(runner);
      }
    }
  }
}

BasicBlock* DominatorTree::idom(const BasicBlock* bb) const {
  auto it = idom_.find(bb);
  return it == idom_.end() ? nullptr : it->second;
}

bool DominatorTree::dominates(const BasicBlock* a, const BasicBlock* b) const {
  if (!rpoIndex_.contains(a) || !rpoIndex_.contains(b)) return false;
  const BasicBlock* runner = b;
  while (runner != nullptr) {
    if (runner == a) return true;
    runner = idom(runner);
  }
  return false;
}

const std::vector<BasicBlock*>& DominatorTree::frontier(const BasicBlock* bb) const {
  auto it = frontier_.find(bb);
  return it == frontier_.end() ? emptyFrontier_ : it->second;
}

}  // namespace refine::ir
