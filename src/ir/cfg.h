// Control-flow-graph queries over IR functions.
//
// Successors come straight from terminators; predecessor maps and traversal
// orders are computed on demand (passes recompute rather than maintain
// incremental state — simpler and cheap at this project's scale).
#pragma once

#include <unordered_map>
#include <vector>

#include "ir/ir.h"

namespace refine::ir {

/// Successor blocks of `bb` in terminator order (0, 1).
std::vector<BasicBlock*> successors(const BasicBlock* bb);

/// Map from block to its predecessors, in function block order.
std::unordered_map<const BasicBlock*, std::vector<BasicBlock*>> predecessorMap(
    const Function& fn);

/// Blocks reachable from entry, in reverse post-order (ideal for dataflow).
std::vector<BasicBlock*> reversePostOrder(const Function& fn);

/// Blocks unreachable from the entry block.
std::vector<BasicBlock*> unreachableBlocks(const Function& fn);

}  // namespace refine::ir
