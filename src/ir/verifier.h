// IR well-formedness verification.
//
// Run after frontend codegen and after every optimization pass in tests.
// Checks: single terminator per block (at the end only), operand typing,
// phi placement/arity, and SSA dominance of uses by definitions.
#pragma once

#include <string>
#include <vector>

#include "ir/ir.h"

namespace refine::ir {

/// Returns a list of human-readable problems; empty means the module is valid.
std::vector<std::string> verifyModule(const Module& module);

/// Convenience: throws CheckError with all problems when invalid.
void verifyOrThrow(const Module& module);

}  // namespace refine::ir
