#include "ir/runtime.h"

#include "support/check.h"

namespace refine::ir {

const std::vector<RuntimeFnInfo>& runtimeFunctions() {
  static const std::vector<RuntimeFnInfo> table = {
      {RuntimeFn::PrintI64, "print_i64", Type::Void, {Type::I64}},
      {RuntimeFn::PrintF64, "print_f64", Type::Void, {Type::F64}},
      {RuntimeFn::PrintStr, "print_str", Type::Void, {Type::I64}},
      {RuntimeFn::Exp, "exp", Type::F64, {Type::F64}},
      {RuntimeFn::Log, "log", Type::F64, {Type::F64}},
      {RuntimeFn::Sin, "sin", Type::F64, {Type::F64}},
      {RuntimeFn::Cos, "cos", Type::F64, {Type::F64}},
      {RuntimeFn::Pow, "pow", Type::F64, {Type::F64, Type::F64}},
      {RuntimeFn::Floor, "floor", Type::F64, {Type::F64}},
      {RuntimeFn::AssertEq, "fi_assert_eq", Type::Void,
       {Type::I64, Type::I64}},
      {RuntimeFn::Vote, "fi_vote", Type::I64, {Type::I64, Type::I64, Type::I64}},
  };
  return table;
}

std::optional<RuntimeFn> findRuntimeFn(std::string_view name) {
  for (const auto& info : runtimeFunctions()) {
    if (name == info.name) return info.fn;
  }
  return std::nullopt;
}

const RuntimeFnInfo& runtimeFnInfo(RuntimeFn fn) {
  const auto& table = runtimeFunctions();
  const auto index = static_cast<std::size_t>(fn);
  RF_CHECK(index < table.size(), "bad RuntimeFn");
  return table[index];
}

}  // namespace refine::ir
