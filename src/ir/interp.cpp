#include "ir/interp.h"

#include <bit>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <unordered_map>
#include <vector>

#include "ir/layout.h"
#include "ir/runtime.h"
#include "support/strings.h"

namespace refine::ir {

std::size_t formatPrintI64Buf(char* buf, std::int64_t v) {
  return static_cast<std::size_t>(std::snprintf(
      buf, kPrintI64BufSize, "%lld\n", static_cast<long long>(v)));
}

std::size_t formatPrintF64Buf(char* buf, double v) {
  return static_cast<std::size_t>(
      std::snprintf(buf, kPrintF64BufSize, "%.6e\n", v));
}

void formatPrintI64Into(std::string& out, std::int64_t v) {
  char buf[kPrintI64BufSize];
  out.append(buf, formatPrintI64Buf(buf, v));
}

void formatPrintF64Into(std::string& out, double v) {
  char buf[kPrintF64BufSize];
  out.append(buf, formatPrintF64Buf(buf, v));
}

std::string formatPrintI64(std::int64_t v) {
  std::string s;
  formatPrintI64Into(s, v);
  return s;
}

std::string formatPrintF64(double v) {
  std::string s;
  formatPrintF64Into(s, v);
  return s;
}

namespace {

using u64 = std::uint64_t;
using i64 = std::int64_t;

double asF64(u64 bits) { return std::bit_cast<double>(bits); }
u64 asBits(double v) { return std::bit_cast<u64>(v); }

i64 fpToSi(double v) {
  // x64 cvttsd2si semantics: out-of-range and NaN produce INT64_MIN.
  if (std::isnan(v) || v >= 9.2233720368547758e18 || v < -9.2233720368547758e18) {
    return std::numeric_limits<i64>::min();
  }
  return static_cast<i64>(v);
}

class Interp {
 public:
  Interp(const Module& module, u64 maxInstrs)
      : module_(module), layout_(module), budget_(maxInstrs) {
    globals_.resize(layout_.globalBytes(), 0);
    for (const auto& g : module.globals()) {
      const u64 base = layout_.addressOf(g.get()) - DataLayout::kGlobalBase;
      const auto& init = g->init();
      for (std::size_t i = 0; i < init.size() && i < g->count(); ++i) {
        std::memcpy(&globals_[base + i * 8], &init[i], 8);
      }
    }
    stack_.resize(DataLayout::kStackSize, 0);
    sp_ = DataLayout::kStackTop;
  }

  InterpResult run(const Function* entry) {
    u64 ret = 0;
    const bool ok = runFunction(entry, {}, ret);
    InterpResult res;
    res.output = std::move(output_);
    res.instrCount = count_;
    if (!ok) {
      res.trapped = true;
      res.trap = trap_;
      res.exitCode = -1;
    } else {
      res.exitCode = static_cast<i64>(ret);
    }
    return res;
  }

 private:
  struct Frame {
    std::unordered_map<const Value*, u64> values;
    const Function* fn = nullptr;
  };

  bool fail(InterpTrap t) {
    trap_ = t;
    return false;
  }

  // Each simulated call also consumes a native C++ frame (runFunction
  // recurses), so the simulated 4 MiB stack alone cannot protect the host
  // stack: a tiny-frame program could nest ~260k simulated calls and
  // overflow the real 8 MiB stack long before sp_ hits kStackLimit. Cap the
  // native depth and report the same trap the simulated guard raises. The
  // cap is far below what an 8 MiB host stack holds (~1 KiB/frame), and is
  // lowered under ASan, whose redzones inflate frames several-fold.
#ifndef __has_feature
#define __has_feature(x) 0  // GCC signals ASan via __SANITIZE_ADDRESS__
#endif
#if defined(__SANITIZE_ADDRESS__) || __has_feature(address_sanitizer)
  static constexpr unsigned kMaxNativeDepth = 400;
#else
  static constexpr unsigned kMaxNativeDepth = 6000;
#endif

  bool loadWord(u64 addr, u64& out) {
    if (addr >= DataLayout::kGlobalBase &&
        addr + 8 <= DataLayout::kGlobalBase + globals_.size()) {
      std::memcpy(&out, &globals_[addr - DataLayout::kGlobalBase], 8);
      return true;
    }
    if (addr >= DataLayout::kStackLimit && addr + 8 <= DataLayout::kStackTop) {
      std::memcpy(&out, &stack_[addr - DataLayout::kStackLimit], 8);
      return true;
    }
    return fail(InterpTrap::BadMemory);
  }

  bool storeWord(u64 addr, u64 value) {
    if (addr >= DataLayout::kGlobalBase &&
        addr + 8 <= DataLayout::kGlobalBase + globals_.size()) {
      std::memcpy(&globals_[addr - DataLayout::kGlobalBase], &value, 8);
      return true;
    }
    if (addr >= DataLayout::kStackLimit && addr + 8 <= DataLayout::kStackTop) {
      std::memcpy(&stack_[addr - DataLayout::kStackLimit], &value, 8);
      return true;
    }
    return fail(InterpTrap::BadMemory);
  }

  u64 eval(const Frame& frame, const Value* v) {
    switch (v->kind()) {
      case ValueKind::ConstantInt:
        return static_cast<u64>(static_cast<const ConstantInt*>(v)->value());
      case ValueKind::ConstantFloat:
        return asBits(static_cast<const ConstantFloat*>(v)->value());
      case ValueKind::Global:
        return layout_.addressOf(static_cast<const GlobalVar*>(v));
      default: {
        auto it = frame.values.find(v);
        RF_CHECK(it != frame.values.end(), "use of undefined value");
        return it->second;
      }
    }
  }

  bool callRuntime(RuntimeFn fn, const std::vector<u64>& args, u64& ret) {
    switch (fn) {
      case RuntimeFn::PrintI64:
        formatPrintI64Into(output_, static_cast<i64>(args[0]));
        return true;
      case RuntimeFn::PrintF64:
        formatPrintF64Into(output_, asF64(args[0]));
        return true;
      case RuntimeFn::PrintStr: {
        const u64 index = args[0];
        RF_CHECK(index < module_.strings().size(), "print_str index out of range");
        output_ += module_.strings()[index];
        output_ += '\n';
        return true;
      }
      case RuntimeFn::Exp: ret = asBits(std::exp(asF64(args[0]))); return true;
      case RuntimeFn::Log: ret = asBits(std::log(asF64(args[0]))); return true;
      case RuntimeFn::Sin: ret = asBits(std::sin(asF64(args[0]))); return true;
      case RuntimeFn::Cos: ret = asBits(std::cos(asF64(args[0]))); return true;
      case RuntimeFn::Pow:
        ret = asBits(std::pow(asF64(args[0]), asF64(args[1])));
        return true;
      case RuntimeFn::Floor: ret = asBits(std::floor(asF64(args[0]))); return true;
      case RuntimeFn::AssertEq:
        if (args[0] != args[1]) return fail(InterpTrap::DetectedByCheck);
        return true;
      case RuntimeFn::Vote:
        if (args[0] == args[1] || args[0] == args[2]) {
          ret = args[0];
          return true;
        }
        if (args[1] == args[2]) {
          ret = args[1];
          return true;
        }
        return fail(InterpTrap::DetectedByCheck);
    }
    RF_UNREACHABLE("bad runtime function");
  }

  bool runFunction(const Function* fn, const std::vector<u64>& args, u64& ret) {
    if (depth_ >= kMaxNativeDepth) return fail(InterpTrap::StackOverflow);
    ++depth_;
    const bool ok = runFunctionAtDepth(fn, args, ret);
    --depth_;
    return ok;
  }

  bool runFunctionAtDepth(const Function* fn, const std::vector<u64>& args,
                          u64& ret) {
    RF_CHECK(!fn->isExternal(), "runFunction on external function");
    const u64 savedSp = sp_;
    Frame frame;
    frame.fn = fn;
    for (std::size_t i = 0; i < fn->params().size(); ++i) {
      frame.values[fn->params()[i].get()] = args[i];
    }

    const BasicBlock* block = fn->entry();
    const BasicBlock* prevBlock = nullptr;
    std::size_t ip = 0;

    // Transfers control to `next`, evaluating phis with parallel semantics.
    auto enterBlock = [&](const BasicBlock* next) -> bool {
      prevBlock = block;
      block = next;
      ip = 0;
      std::vector<std::pair<const Value*, u64>> phiWrites;
      for (const auto& inst : next->instructions()) {
        if (inst->opcode() != Opcode::Phi) break;
        bool matched = false;
        for (std::size_t i = 0; i < inst->numOperands(); ++i) {
          if (inst->phiBlocks()[i] == prevBlock) {
            phiWrites.emplace_back(inst.get(), eval(frame, inst->operand(i)));
            matched = true;
            break;
          }
        }
        RF_CHECK(matched, "phi has no incoming entry for predecessor");
        ++ip;  // phis are consumed by the transfer itself
        ++count_;
      }
      for (const auto& [phi, value] : phiWrites) frame.values[phi] = value;
      return true;
    };

    for (;;) {
      RF_CHECK(ip < block->size(), "fell off the end of a basic block");
      const Instruction& inst = *block->instructions()[ip];
      if (++count_ > budget_) return fail(InterpTrap::Timeout);

      switch (inst.opcode()) {
        case Opcode::Ret:
          ret = inst.numOperands() == 1 ? eval(frame, inst.operand(0)) : 0;
          sp_ = savedSp;
          return true;
        case Opcode::Br:
          if (!enterBlock(inst.target(0))) return false;
          continue;
        case Opcode::CondBr: {
          const bool cond = eval(frame, inst.operand(0)) != 0;
          if (!enterBlock(cond ? inst.target(0) : inst.target(1))) return false;
          continue;
        }
        case Opcode::Alloca: {
          const u64 bytes = (inst.allocaCount() * storeSize(inst.elemType()) + 15) & ~15ULL;
          sp_ -= bytes;
          if (sp_ < DataLayout::kStackLimit) return fail(InterpTrap::StackOverflow);
          frame.values[&inst] = sp_;
          break;
        }
        case Opcode::Load: {
          u64 out = 0;
          if (!loadWord(eval(frame, inst.operand(0)), out)) return false;
          frame.values[&inst] = out;
          break;
        }
        case Opcode::Store:
          if (!storeWord(eval(frame, inst.operand(1)), eval(frame, inst.operand(0)))) {
            return false;
          }
          break;
        case Opcode::Gep: {
          const u64 base = eval(frame, inst.operand(0));
          const u64 index = eval(frame, inst.operand(1));
          frame.values[&inst] = base + index * storeSize(inst.elemType());
          break;
        }
        case Opcode::Add: case Opcode::Sub: case Opcode::Mul:
        case Opcode::SDiv: case Opcode::SRem: case Opcode::And:
        case Opcode::Or: case Opcode::Xor: case Opcode::Shl:
        case Opcode::AShr: case Opcode::LShr: {
          const u64 a = eval(frame, inst.operand(0));
          const u64 b = eval(frame, inst.operand(1));
          u64 r = 0;
          switch (inst.opcode()) {
            case Opcode::Add: r = a + b; break;
            case Opcode::Sub: r = a - b; break;
            case Opcode::Mul: r = a * b; break;
            case Opcode::SDiv:
            case Opcode::SRem: {
              const i64 sa = static_cast<i64>(a);
              const i64 sb = static_cast<i64>(b);
              if (sb == 0 ||
                  (sa == std::numeric_limits<i64>::min() && sb == -1)) {
                return fail(InterpTrap::DivByZero);
              }
              r = static_cast<u64>(inst.opcode() == Opcode::SDiv ? sa / sb
                                                                 : sa % sb);
              break;
            }
            case Opcode::And: r = a & b; break;
            case Opcode::Or: r = a | b; break;
            case Opcode::Xor: r = a ^ b; break;
            case Opcode::Shl: r = a << (b & 63); break;
            case Opcode::AShr:
              r = static_cast<u64>(static_cast<i64>(a) >> (b & 63));
              break;
            case Opcode::LShr: r = a >> (b & 63); break;
            default: RF_UNREACHABLE("not an int binary");
          }
          frame.values[&inst] = r;
          break;
        }
        case Opcode::FAdd: case Opcode::FSub: case Opcode::FMul:
        case Opcode::FDiv: {
          const double a = asF64(eval(frame, inst.operand(0)));
          const double b = asF64(eval(frame, inst.operand(1)));
          double r = 0;
          switch (inst.opcode()) {
            case Opcode::FAdd: r = a + b; break;
            case Opcode::FSub: r = a - b; break;
            case Opcode::FMul: r = a * b; break;
            case Opcode::FDiv: r = a / b; break;  // IEEE: inf/NaN, no trap
            default: RF_UNREACHABLE("not a float binary");
          }
          frame.values[&inst] = asBits(r);
          break;
        }
        case Opcode::FAbs:
          frame.values[&inst] = asBits(std::fabs(asF64(eval(frame, inst.operand(0)))));
          break;
        case Opcode::FSqrt:
          frame.values[&inst] = asBits(std::sqrt(asF64(eval(frame, inst.operand(0)))));
          break;
        case Opcode::ICmp: {
          const i64 a = static_cast<i64>(eval(frame, inst.operand(0)));
          const i64 b = static_cast<i64>(eval(frame, inst.operand(1)));
          bool r = false;
          switch (inst.icmpPred()) {
            case ICmpPred::EQ: r = a == b; break;
            case ICmpPred::NE: r = a != b; break;
            case ICmpPred::SLT: r = a < b; break;
            case ICmpPred::SLE: r = a <= b; break;
            case ICmpPred::SGT: r = a > b; break;
            case ICmpPred::SGE: r = a >= b; break;
          }
          frame.values[&inst] = r ? 1 : 0;
          break;
        }
        case Opcode::FCmp: {
          const double a = asF64(eval(frame, inst.operand(0)));
          const double b = asF64(eval(frame, inst.operand(1)));
          bool r = false;
          switch (inst.fcmpPred()) {  // ordered: NaN makes everything false
            case FCmpPred::OEQ: r = a == b; break;
            case FCmpPred::ONE: r = a < b || a > b; break;
            case FCmpPred::OLT: r = a < b; break;
            case FCmpPred::OLE: r = a <= b; break;
            case FCmpPred::OGT: r = a > b; break;
            case FCmpPred::OGE: r = a >= b; break;
          }
          frame.values[&inst] = r ? 1 : 0;
          break;
        }
        case Opcode::Select:
          frame.values[&inst] = eval(frame, inst.operand(0)) != 0
                                    ? eval(frame, inst.operand(1))
                                    : eval(frame, inst.operand(2));
          break;
        case Opcode::ZExt:
          frame.values[&inst] = eval(frame, inst.operand(0)) & 1;
          break;
        case Opcode::SIToFP:
          frame.values[&inst] =
              asBits(static_cast<double>(static_cast<i64>(eval(frame, inst.operand(0)))));
          break;
        case Opcode::FPToSI:
          frame.values[&inst] =
              static_cast<u64>(fpToSi(asF64(eval(frame, inst.operand(0)))));
          break;
        case Opcode::BitcastI2F:
        case Opcode::BitcastF2I:
          frame.values[&inst] = eval(frame, inst.operand(0));
          break;
        case Opcode::Call: {
          std::vector<u64> args;
          args.reserve(inst.numOperands());
          for (std::size_t i = 0; i < inst.numOperands(); ++i) {
            args.push_back(eval(frame, inst.operand(i)));
          }
          u64 result = 0;
          const Function* callee = inst.callee();
          if (callee->isExternal()) {
            const auto rt = findRuntimeFn(callee->name());
            RF_CHECK(rt.has_value(), "unknown external function: " + callee->name());
            if (!callRuntime(*rt, args, result)) return false;
          } else {
            // Model the call's frame cost like the VM (return address push).
            sp_ -= 16;
            if (sp_ < DataLayout::kStackLimit) return fail(InterpTrap::StackOverflow);
            const u64 spAtCall = sp_;
            if (!runFunction(callee, args, result)) return false;
            sp_ = spAtCall + 16;
          }
          if (inst.producesValue()) frame.values[&inst] = result;
          break;
        }
        case Opcode::Phi:
          RF_UNREACHABLE("phi reached sequentially (not via block transfer)");
      }
      ++ip;
    }
  }

  const Module& module_;
  DataLayout layout_;
  std::vector<std::uint8_t> globals_;
  std::vector<std::uint8_t> stack_;
  u64 sp_ = 0;
  unsigned depth_ = 0;  // native runFunction nesting, capped by kMaxNativeDepth
  std::string output_;
  u64 count_ = 0;
  u64 budget_;
  InterpTrap trap_ = InterpTrap::None;
};

}  // namespace

InterpResult interpret(const Module& module, std::string_view entry,
                       std::uint64_t maxInstrs) {
  const Function* fn = module.findFunction(entry);
  RF_CHECK(fn != nullptr && !fn->isExternal(),
           "interpret: entry function not found");
  RF_CHECK(fn->params().empty(), "interpret: entry function must take no args");
  Interp interp(module, maxInstrs);
  return interp.run(fn);
}

}  // namespace refine::ir
