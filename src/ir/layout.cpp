#include "ir/layout.h"

namespace refine::ir {

DataLayout::DataLayout(const Module& module) {
  std::uint64_t offset = 0;
  for (const auto& g : module.globals()) {
    addresses_[g.get()] = kGlobalBase + offset;
    offset += (g->sizeBytes() + 7) & ~7ULL;
  }
  globalBytes_ = offset;
}

std::uint64_t DataLayout::addressOf(const GlobalVar* g) const {
  auto it = addresses_.find(g);
  RF_CHECK(it != addresses_.end(), "global not laid out: " + g->name());
  return it->second;
}

}  // namespace refine::ir
