// Data layout: where globals and the stack live in the simulated address
// space.
//
// Shared by the IR interpreter, the backend emitter and the VM so that
// pointer values agree across every execution path (critical for the
// differential tests that compare interpreted IR against compiled code).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "ir/ir.h"

namespace refine::ir {

class DataLayout {
 public:
  /// First valid global address. Everything below is a guard region so that
  /// null and small-integer "pointers" (a common fault corruption) trap.
  static constexpr std::uint64_t kGlobalBase = 0x10000;

  /// Stack occupies [kStackTop - kStackSize, kStackTop); grows downward.
  static constexpr std::uint64_t kStackTop = 0x4000'0000;
  static constexpr std::uint64_t kStackSize = 4u << 20;  // 4 MiB
  static constexpr std::uint64_t kStackLimit = kStackTop - kStackSize;

  /// Lays out every global of `module` starting at kGlobalBase, 8-aligned.
  explicit DataLayout(const Module& module);

  std::uint64_t addressOf(const GlobalVar* g) const;

  /// Total bytes of the global data segment.
  std::uint64_t globalBytes() const noexcept { return globalBytes_; }

 private:
  std::unordered_map<const GlobalVar*, std::uint64_t> addresses_;
  std::uint64_t globalBytes_ = 0;
};

}  // namespace refine::ir
