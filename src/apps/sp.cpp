#include "apps/apps.h"

namespace refine::apps::detail {

AppInfo makeSP() {
  AppInfo app;
  app.name = "SP";
  app.paperInput = "A";
  app.description =
      "NAS SP: scalar pentadiagonal solver (two-band forward elimination, "
      "two-band back substitution) over batched lines with ADI-style "
      "re-coupling";
  app.source = R"MC(
// NAS SP mini-kernel: pentadiagonal line solves.
var a2: f64[64];   // second sub-diagonal
var a1: f64[64];   // first sub-diagonal
var d0: f64[64];   // diagonal
var c1: f64[64];   // first super-diagonal
var c2: f64[64];   // second super-diagonal
var rhs: f64[384]; // 6 lines x 64
var sol: f64[384];
var wd: f64[64];   // working diagonal
var w1: f64[64];   // working first super
var w2: f64[64];   // working second super
var wr: f64[64];   // working rhs
var lineLen: i64 = 64;
var nLines: i64 = 6;

fn solvePenta(line: i64) {
  var base: i64 = line * lineLen;
  for (var i: i64 = 0; i < lineLen; i = i + 1) {
    wd[i] = d0[i];
    w1[i] = c1[i];
    w2[i] = c2[i];
    wr[i] = rhs[base + i];
  }
  // Forward elimination of both sub-diagonals.
  for (var i: i64 = 1; i < lineLen; i = i + 1) {
    var m1: f64 = a1[i] / wd[i - 1];
    wd[i] = wd[i] - m1 * w1[i - 1];
    w1[i] = w1[i] - m1 * w2[i - 1];
    wr[i] = wr[i] - m1 * wr[i - 1];
    if (i >= 2) {
      var m2: f64 = a2[i] / wd[i - 2];
      wd[i] = wd[i] - m2 * w2[i - 2];
      wr[i] = wr[i] - m2 * wr[i - 2];
    }
  }
  // Back substitution over both super-diagonals.
  sol[base + lineLen - 1] = wr[lineLen - 1] / wd[lineLen - 1];
  sol[base + lineLen - 2] =
      (wr[lineLen - 2] - w1[lineLen - 2] * sol[base + lineLen - 1]) /
      wd[lineLen - 2];
  for (var i: i64 = lineLen - 3; i >= 0; i = i - 1) {
    sol[base + i] = (wr[i] - w1[i] * sol[base + i + 1] -
                     w2[i] * sol[base + i + 2]) / wd[i];
  }
}

fn main() -> i64 {
  for (var i: i64 = 0; i < lineLen; i = i + 1) {
    a2[i] = -0.25;
    a1[i] = -1.0;
    d0[i] = 5.0 + 0.02 * f64(i);
    c1[i] = -1.0;
    c2[i] = -0.25;
  }
  for (var l: i64 = 0; l < nLines; l = l + 1) {
    for (var i: i64 = 0; i < lineLen; i = i + 1) {
      rhs[l * lineLen + i] = cos(f64(l) * 0.8 + f64(i) * 0.15) + 2.0;
    }
  }
  print_str("SP pentadiagonal solves");
  for (var sweep: i64 = 0; sweep < 6; sweep = sweep + 1) {
    for (var l: i64 = 0; l < nLines; l = l + 1) { solvePenta(l); }
    // ADI-style re-coupling across lines.
    for (var l: i64 = 0; l < nLines; l = l + 1) {
      var up: i64 = (l + 1) % nLines;
      var down: i64 = (l + nLines - 1) % nLines;
      for (var i: i64 = 0; i < lineLen; i = i + 1) {
        rhs[l * lineLen + i] = 0.6 * rhs[l * lineLen + i] +
                               0.2 * sol[up * lineLen + i] +
                               0.2 * sol[down * lineLen + i];
      }
    }
  }
  var norm: f64 = 0.0;
  for (var k: i64 = 0; k < nLines * lineLen; k = k + 1) {
    norm = norm + sol[k] * sol[k];
  }
  print_f64(sqrt(norm));
  print_f64(sol[3 * lineLen + 32]);
  if (norm > 1.0e8) { return 1; }
  return 0;
}
)MC";
  return app;
}

}  // namespace refine::apps::detail
