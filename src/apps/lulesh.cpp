#include "apps/apps.h"

namespace refine::apps::detail {

AppInfo makeLulesh() {
  AppInfo app;
  app.name = "lulesh";
  app.paperInput = "(default)";
  app.description =
      "1D Lagrangian shock hydrodynamics (Sod problem): ideal-gas EOS, "
      "artificial viscosity, staggered-grid leapfrog update";
  app.source = R"MC(
// lulesh mini-kernel: 1D Lagrangian hydro on a shock tube.
var nodeX: f64[66];
var nodeV: f64[66];
var elemRho: f64[66];
var elemE: f64[66];
var elemP: f64[66];
var elemQ: f64[66];
var elemMass: f64[66];
var numElems: i64 = 64;
var gammaGas: f64 = 1.4;

fn updatePressure() {
  for (var e: i64 = 0; e < numElems; e = e + 1) {
    elemP[e] = (gammaGas - 1.0) * elemRho[e] * elemE[e];
    if (elemP[e] < 0.0) { elemP[e] = 0.0; }
    else { elemP[e] = elemP[e]; }
  }
}

fn updateViscosity() {
  for (var e: i64 = 0; e < numElems; e = e + 1) {
    var dv: f64 = nodeV[e + 1] - nodeV[e];
    if (dv < 0.0) {
      elemQ[e] = 2.0 * elemRho[e] * dv * dv;
    } else {
      elemQ[e] = 0.0;
    }
  }
}

fn main() -> i64 {
  // Sod setup: high density/energy left, low right.
  for (var e: i64 = 0; e < numElems; e = e + 1) {
    if (e < numElems / 2) {
      elemRho[e] = 1.0;
      elemE[e] = 2.5;
    } else {
      elemRho[e] = 0.125;
      elemE[e] = 2.0;
    }
    elemQ[e] = 0.0;
  }
  for (var i: i64 = 0; i <= numElems; i = i + 1) {
    nodeX[i] = f64(i) / f64(numElems);
    nodeV[i] = 0.0;
  }
  for (var e: i64 = 0; e < numElems; e = e + 1) {
    elemMass[e] = elemRho[e] * (nodeX[e + 1] - nodeX[e]);
  }
  print_str("lulesh 1D shock tube");
  var dt: f64 = 0.0004;
  for (var step: i64 = 0; step < 60; step = step + 1) {
    updatePressure();
    updateViscosity();
    // Nodal acceleration from pressure gradient (free boundaries pinned).
    for (var i: i64 = 1; i < numElems; i = i + 1) {
      var nodalMass: f64 = 0.5 * (elemMass[i - 1] + elemMass[i]);
      var force: f64 = (elemP[i - 1] + elemQ[i - 1]) - (elemP[i] + elemQ[i]);
      nodeV[i] = nodeV[i] + dt * force / nodalMass;
    }
    for (var i: i64 = 1; i < numElems; i = i + 1) {
      nodeX[i] = nodeX[i] + dt * nodeV[i];
    }
    // Element update: new volume -> density and internal energy.
    for (var e: i64 = 0; e < numElems; e = e + 1) {
      var vol: f64 = nodeX[e + 1] - nodeX[e];
      var newRho: f64 = elemMass[e] / vol;
      var dvol: f64 = elemMass[e] / elemRho[e];
      dvol = vol - dvol;
      elemE[e] = elemE[e] - (elemP[e] + elemQ[e]) * dvol / elemMass[e];
      if (elemE[e] < 0.0) { elemE[e] = 0.0; }
      else { elemE[e] = elemE[e]; }
      elemRho[e] = newRho;
    }
  }
  var totalE: f64 = 0.0;
  for (var e: i64 = 0; e < numElems; e = e + 1) {
    totalE = totalE + elemMass[e] * elemE[e];
  }
  for (var i: i64 = 0; i <= numElems; i = i + 1) {
    totalE = totalE + 0.25 * (nodeV[i] * nodeV[i]);
  }
  print_f64(totalE);
  print_f64(elemP[numElems / 2]);
  print_f64(nodeX[numElems / 2]);
  if (totalE > 100.0) { return 1; }
  return 0;
}
)MC";
  return app;
}

}  // namespace refine::apps::detail
