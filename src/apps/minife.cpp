#include "apps/apps.h"

namespace refine::apps::detail {

AppInfo makeMiniFE() {
  AppInfo app;
  app.name = "miniFE";
  app.paperInput = "-nx 18 -ny 16 -nz 16";
  app.description =
      "finite-element workflow: element-by-element stiffness assembly with "
      "source integration, Dirichlet conditions, then a CG solve";
  app.source = R"MC(
// miniFE mini-kernel: assemble a 1D FE stiffness system, then CG-solve it.
var Adiag: f64[130];
var Aoff: f64[130];    // symmetric off-diagonal (i, i+1)
var bvec: f64[130];
var xvec: f64[130];
var rvec: f64[130];
var pvec: f64[130];
var Apvec: f64[130];
var nNodes: i64 = 112;

fn assemble() {
  var h: f64 = 1.0 / f64(nNodes - 1);
  for (var e: i64 = 0; e < nNodes - 1; e = e + 1) {
    var k: f64 = 1.0 / h;
    // Element stiffness [k, -k; -k, k] scattered into the global matrix.
    Adiag[e] = Adiag[e] + k;
    Adiag[e + 1] = Adiag[e + 1] + k;
    Aoff[e] = Aoff[e] - k;
    // Midpoint-rule load integration for f(x) = 1 + x.
    var xm: f64 = (f64(e) + 0.5) * h;
    bvec[e] = bvec[e] + 0.5 * h * (1.0 + xm);
    bvec[e + 1] = bvec[e + 1] + 0.5 * h * (1.0 + xm);
  }
  // Dirichlet u = 0 at both ends: eliminate the boundary rows and columns
  // (keeps the system symmetric positive definite for CG).
  Adiag[0] = 1.0;
  Adiag[nNodes - 1] = 1.0;
  Aoff[0] = 0.0;
  Aoff[nNodes - 2] = 0.0;
  bvec[0] = 0.0;
  bvec[nNodes - 1] = 0.0;
}

fn matvec() {
  for (var i: i64 = 0; i < nNodes; i = i + 1) {
    var sum: f64 = Adiag[i] * pvec[i];
    if (i > 0) { sum = sum + Aoff[i - 1] * pvec[i - 1]; }
    if (i < nNodes - 1) { sum = sum + Aoff[i] * pvec[i + 1]; }
    Apvec[i] = sum;
  }
}

fn dotRR() -> f64 {
  var s: f64 = 0.0;
  for (var i: i64 = 0; i < nNodes; i = i + 1) { s = s + rvec[i] * rvec[i]; }
  return s;
}

fn dotPAp() -> f64 {
  var s: f64 = 0.0;
  for (var i: i64 = 0; i < nNodes; i = i + 1) { s = s + pvec[i] * Apvec[i]; }
  return s;
}

fn main() -> i64 {
  assemble();
  print_str("miniFE assemble+solve");
  for (var i: i64 = 0; i < nNodes; i = i + 1) {
    xvec[i] = 0.0;
    rvec[i] = bvec[i];
    pvec[i] = bvec[i];
  }
  var rtr: f64 = dotRR();
  var iters: i64 = 0;
  for (var k: i64 = 0; k < 30; k = k + 1) {
    matvec();
    var alpha: f64 = rtr / dotPAp();
    for (var i: i64 = 0; i < nNodes; i = i + 1) {
      xvec[i] = xvec[i] + alpha * pvec[i];
      rvec[i] = rvec[i] - alpha * Apvec[i];
    }
    var rtrNew: f64 = dotRR();
    iters = iters + 1;
    if (rtrNew < 1.0e-20) { break; }
    var beta: f64 = rtrNew / rtr;
    rtr = rtrNew;
    for (var i: i64 = 0; i < nNodes; i = i + 1) {
      pvec[i] = rvec[i] + beta * pvec[i];
    }
  }
  print_i64(iters);
  print_f64(sqrt(rtr));
  print_f64(xvec[nNodes / 2]);
  if (sqrt(rtr) > 10.0) { return 1; }
  return 0;
}
)MC";
  return app;
}

}  // namespace refine::apps::detail
