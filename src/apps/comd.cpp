#include "apps/apps.h"

namespace refine::apps::detail {

AppInfo makeCoMD() {
  AppInfo app;
  app.name = "CoMD";
  app.paperInput = "-d ./pots/ -e -i 1 -j 1 -k 1 -x 32 -y 32 -z 32";
  app.description =
      "Lennard-Jones molecular dynamics: all-pairs force computation with "
      "minimum-image convention and velocity-Verlet integration";
  app.source = R"MC(
// CoMD mini-kernel: 1D periodic Lennard-Jones chain, velocity Verlet.
var px: f64[64];
var vx: f64[64];
var fx: f64[64];
var nAtoms: i64 = 48;
var boxLen: f64 = 52.8;
var ePotential: f64 = 0.0;

fn eamForce() {
  for (var i: i64 = 0; i < nAtoms; i = i + 1) { fx[i] = 0.0; }
  var ePot: f64 = 0.0;
  for (var i: i64 = 0; i < nAtoms; i = i + 1) {
    for (var j: i64 = i + 1; j < nAtoms; j = j + 1) {
      var dx: f64 = px[i] - px[j];
      if (dx > 0.5 * boxLen) { dx = dx - boxLen; }
      if (dx < -0.5 * boxLen) { dx = dx + boxLen; }
      var r2: f64 = dx * dx;
      if (r2 < 6.25) {  // cutoff 2.5 sigma
        var inv2: f64 = 1.0 / r2;
        var inv6: f64 = inv2 * inv2 * inv2;
        ePot = ePot + 4.0 * (inv6 * inv6 - inv6);
        var fmag: f64 = 24.0 * (2.0 * inv6 * inv6 - inv6) * inv2;
        fx[i] = fx[i] + fmag * dx;
        fx[j] = fx[j] - fmag * dx;
      }
    }
  }
  ePotential = ePot;
}

fn kineticEnergy() -> f64 {
  var eKin: f64 = 0.0;
  for (var i: i64 = 0; i < nAtoms; i = i + 1) {
    eKin = eKin + 0.5 * vx[i] * vx[i];
  }
  return eKin;
}

fn main() -> i64 {
  // Slightly perturbed lattice so forces are non-trivial but bounded.
  for (var i: i64 = 0; i < nAtoms; i = i + 1) {
    px[i] = f64(i) * 1.1 + 0.02 * sin(f64(i) * 1.7);
    vx[i] = 0.01 * cos(f64(i) * 0.9);
  }
  print_str("CoMD LJ chain");
  var dt: f64 = 0.002;
  eamForce();
  for (var step: i64 = 0; step < 8; step = step + 1) {
    for (var i: i64 = 0; i < nAtoms; i = i + 1) {
      vx[i] = vx[i] + 0.5 * dt * fx[i];
      px[i] = px[i] + dt * vx[i];
    }
    eamForce();
    for (var i: i64 = 0; i < nAtoms; i = i + 1) {
      vx[i] = vx[i] + 0.5 * dt * fx[i];
    }
  }
  var eKin: f64 = kineticEnergy();
  print_f64(ePotential);
  print_f64(eKin);
  print_f64(ePotential + eKin);
  // Sanity: the chain must stay bound (total energy finite and negative).
  if (ePotential + eKin > 0.0) { return 1; }
  return 0;
}
)MC";
  return app;
}

}  // namespace refine::apps::detail
