#include "apps/apps.h"

namespace refine::apps::detail {

AppInfo makeHPCCG() {
  AppInfo app;
  app.name = "HPCCG-1.0";
  app.paperInput = "128 128 128";
  app.description =
      "conjugate-gradient solve of a 1D Laplacian (sparse mat-vec, dot "
      "products, AXPYs and the max-residual reduction from the paper's "
      "Listing 2)";
  app.source = R"MC(
// HPCCG mini-kernel: CG on the [-1, 2, -1] Laplacian with guard cells.
var xv: f64[132];
var bv: f64[132];
var rv: f64[132];
var pv: f64[132];
var Ap: f64[132];
var n: i64 = 128;

// A * p with zero Dirichlet boundaries (indices 1..n; 0 and n+1 are guards).
fn sparsemv() {
  for (var i: i64 = 1; i <= n; i = i + 1) {
    Ap[i] = 2.0 * pv[i] - pv[i - 1] - pv[i + 1];
  }
}

fn ddot_rr() -> f64 {
  var sum: f64 = 0.0;
  for (var i: i64 = 1; i <= n; i = i + 1) { sum = sum + rv[i] * rv[i]; }
  return sum;
}

fn ddot_pAp() -> f64 {
  var sum: f64 = 0.0;
  for (var i: i64 = 1; i <= n; i = i + 1) { sum = sum + pv[i] * Ap[i]; }
  return sum;
}

// The paper's Listing 2 kernel: max |r_i| reduction (fcmp+select -> FMAX).
fn compute_residual() -> f64 {
  var local_residual: f64 = 0.0;
  for (var i: i64 = 1; i <= n; i = i + 1) {
    var a: f64 = fabs(rv[i]);
    if (a > local_residual) { local_residual = a; }
    else { local_residual = local_residual; }
  }
  return local_residual;
}

fn main() -> i64 {
  for (var i: i64 = 0; i <= n + 1; i = i + 1) {
    xv[i] = 0.0;
    bv[i] = 1.0;
    rv[i] = 0.0;
    pv[i] = 0.0;
    Ap[i] = 0.0;
  }
  bv[0] = 0.0;
  bv[n + 1] = 0.0;
  print_str("HPCCG conjugate gradient");
  // r = b - A x = b (x = 0); p = r.
  for (var i: i64 = 1; i <= n; i = i + 1) { rv[i] = bv[i]; pv[i] = rv[i]; }
  var rtr: f64 = ddot_rr();
  var iters: i64 = 0;
  for (var k: i64 = 0; k < 40; k = k + 1) {
    sparsemv();
    var alpha: f64 = rtr / ddot_pAp();
    for (var i: i64 = 1; i <= n; i = i + 1) {
      xv[i] = xv[i] + alpha * pv[i];
      rv[i] = rv[i] - alpha * Ap[i];
    }
    var rtrNew: f64 = ddot_rr();
    iters = iters + 1;
    if (rtrNew < 1.0e-16) { break; }
    var beta: f64 = rtrNew / rtr;
    rtr = rtrNew;
    for (var i: i64 = 1; i <= n; i = i + 1) { pv[i] = rv[i] + beta * pv[i]; }
  }
  print_i64(iters);
  print_f64(sqrt(rtr));
  print_f64(compute_residual());
  print_f64(xv[n / 2]);
  if (sqrt(rtr) > 1000.0) { return 1; }
  return 0;
}
)MC";
  return app;
}

}  // namespace refine::apps::detail
