#include "apps/apps.h"

namespace refine::apps::detail {

AppInfo makeEP() {
  AppInfo app;
  app.name = "EP";
  app.paperInput = "A";
  app.description =
      "NAS EP: Gaussian deviates by the Marsaglia polar method over an LCG "
      "stream; annulus tallies and coordinate sums";
  app.source = R"MC(
// NAS EP mini-kernel: embarrassingly parallel Gaussian pair generation.
var qcounts: i64[10];
var seed: i64 = 314159;
var nPairs: i64 = 1600;

fn lcg() -> i64 {
  seed = (seed * 1103515245 + 12345) % 2147483648;
  if (seed < 0) { seed = -seed; }
  return seed;
}

fn rand01() -> f64 {
  return f64(lcg()) / 2147483648.0;
}

fn main() -> i64 {
  print_str("EP gaussian pairs");
  var sx: f64 = 0.0;
  var sy: f64 = 0.0;
  var accepted: i64 = 0;
  for (var k: i64 = 0; k < nPairs; k = k + 1) {
    var x: f64 = 2.0 * rand01() - 1.0;
    var y: f64 = 2.0 * rand01() - 1.0;
    var t: f64 = x * x + y * y;
    if (t <= 1.0 && t > 0.0) {
      var scale: f64 = sqrt(-2.0 * log(t) / t);
      var gx: f64 = x * scale;
      var gy: f64 = y * scale;
      sx = sx + gx;
      sy = sy + gy;
      accepted = accepted + 1;
      var amax: f64 = fabs(gx);
      var ay: f64 = fabs(gy);
      if (ay > amax) { amax = ay; }
      else { amax = amax; }
      var bucket: i64 = i64(amax);
      if (bucket > 9) { bucket = 9; }
      qcounts[bucket] = qcounts[bucket] + 1;
    }
  }
  print_i64(accepted);
  print_f64(sx);
  print_f64(sy);
  for (var b: i64 = 0; b < 4; b = b + 1) { print_i64(qcounts[b]); }
  // Count conservation: tallies must sum to the accepted pairs.
  var totalQ: i64 = 0;
  for (var b: i64 = 0; b < 10; b = b + 1) { totalQ = totalQ + qcounts[b]; }
  if (totalQ != accepted) { return 1; }
  return 0;
}
)MC";
  return app;
}

}  // namespace refine::apps::detail
