#include "apps/apps.h"

namespace refine::apps::detail {

AppInfo makeUA() {
  AppInfo app;
  app.name = "UA";
  app.paperInput = "B";
  app.description =
      "NAS UA: unstructured adaptive workload — indirect-gather smoothing "
      "over an irregular adjacency with periodic re-marking of the active "
      "element set (heavy pointer-chasing integer + FP mix)";
  app.source = R"MC(
// NAS UA mini-kernel: adaptive smoothing over an irregular mesh.
var val: f64[256];
var adj: i64[512];      // two neighbours per element, irregular
var active: i64[256];   // indices of currently active elements
var err: f64[256];
var nElems: i64 = 256;
var nActive: i64 = 128;
var seed: i64 = 424242;

fn lcg() -> i64 {
  seed = (seed * 1103515245 + 12345) % 2147483648;
  if (seed < 0) { seed = -seed; }
  return seed;
}

fn main() -> i64 {
  // Irregular adjacency and initial field.
  for (var i: i64 = 0; i < nElems; i = i + 1) {
    val[i] = sin(f64(i) * 0.37) * 2.0;
    adj[2 * i] = lcg() % nElems;
    adj[2 * i + 1] = lcg() % nElems;
    err[i] = 0.0;
  }
  for (var k: i64 = 0; k < nActive; k = k + 1) {
    active[k] = lcg() % nElems;
  }
  print_str("UA adaptive smoothing");
  for (var it: i64 = 0; it < 14; it = it + 1) {
    // Smooth the active set through the irregular adjacency.
    for (var k: i64 = 0; k < nActive; k = k + 1) {
      var e: i64 = active[k];
      var left: f64 = val[adj[2 * e]];
      var right: f64 = val[adj[2 * e + 1]];
      var updated: f64 = 0.5 * val[e] + 0.25 * (left + right);
      err[e] = fabs(updated - val[e]);
      val[e] = updated;
    }
    // Adapt: elements with large local error recruit one neighbour into
    // the active set (refinement-like churn of the index structures).
    for (var k: i64 = 0; k < nActive; k = k + 1) {
      var e: i64 = active[k];
      if (err[e] > 0.1) {
        active[k] = adj[2 * e];
      } else {
        active[k] = (e + 17) % nElems;
      }
    }
  }
  var norm: f64 = 0.0;
  for (var i: i64 = 0; i < nElems; i = i + 1) { norm = norm + val[i] * val[i]; }
  print_f64(sqrt(norm));
  var ihash: i64 = 0;
  for (var k: i64 = 0; k < nActive; k = k + 1) {
    ihash = (ihash * 37 + active[k]) % 1000000007;
  }
  print_i64(ihash);
  print_f64(val[100]);
  if (norm > 1.0e9) { return 1; }
  return 0;
}
)MC";
  return app;
}

}  // namespace refine::apps::detail
