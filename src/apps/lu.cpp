#include "apps/apps.h"

namespace refine::apps::detail {

AppInfo makeLU() {
  AppInfo app;
  app.name = "LU";
  app.paperInput = "A";
  app.description =
      "NAS LU: symmetric successive over-relaxation (forward + backward "
      "Gauss-Seidel sweeps) on a 2D five-point grid";
  app.source = R"MC(
// NAS LU mini-kernel: SSOR solver for the 2D Poisson five-point stencil.
var grid: f64[324];    // 18 x 18 including boundary ring
var rhsv: f64[324];
var nInner: i64 = 16;
var omega: f64 = 1.2;

fn cellIndex(i: i64, j: i64) -> i64 {
  return i * 18 + j;
}

fn sweepForward() {
  for (var i: i64 = 1; i <= nInner; i = i + 1) {
    for (var j: i64 = 1; j <= nInner; j = j + 1) {
      var c: i64 = cellIndex(i, j);
      var gs: f64 = 0.25 * (grid[c - 1] + grid[c + 1] + grid[c - 18] +
                            grid[c + 18] + rhsv[c]);
      grid[c] = grid[c] + omega * (gs - grid[c]);
    }
  }
}

fn sweepBackward() {
  for (var i: i64 = nInner; i >= 1; i = i - 1) {
    for (var j: i64 = nInner; j >= 1; j = j - 1) {
      var c: i64 = cellIndex(i, j);
      var gs: f64 = 0.25 * (grid[c - 1] + grid[c + 1] + grid[c - 18] +
                            grid[c + 18] + rhsv[c]);
      grid[c] = grid[c] + omega * (gs - grid[c]);
    }
  }
}

fn residualNorm() -> f64 {
  var norm: f64 = 0.0;
  for (var i: i64 = 1; i <= nInner; i = i + 1) {
    for (var j: i64 = 1; j <= nInner; j = j + 1) {
      var c: i64 = cellIndex(i, j);
      var r: f64 = rhsv[c] - (4.0 * grid[c] - grid[c - 1] - grid[c + 1] -
                              grid[c - 18] - grid[c + 18]);
      norm = norm + r * r;
    }
  }
  return sqrt(norm);
}

fn main() -> i64 {
  for (var i: i64 = 0; i < 18; i = i + 1) {
    for (var j: i64 = 0; j < 18; j = j + 1) {
      grid[cellIndex(i, j)] = 0.0;
      rhsv[cellIndex(i, j)] = 0.01 * (sin(f64(i) * 0.6) + cos(f64(j) * 0.4));
    }
  }
  print_str("LU SSOR sweeps");
  for (var sweep: i64 = 0; sweep < 18; sweep = sweep + 1) {
    sweepForward();
    sweepBackward();
  }
  var finalNorm: f64 = residualNorm();
  print_f64(finalNorm);
  print_f64(grid[cellIndex(8, 8)]);
  var sum: f64 = 0.0;
  for (var i: i64 = 1; i <= nInner; i = i + 1) {
    for (var j: i64 = 1; j <= nInner; j = j + 1) {
      sum = sum + grid[cellIndex(i, j)];
    }
  }
  print_f64(sum);
  if (finalNorm > 1.0) { return 1; }
  return 0;
}
)MC";
  return app;
}

}  // namespace refine::apps::detail
