#include "apps/apps.h"

namespace refine::apps {

const std::vector<AppInfo>& benchmarkApps() {
  static const std::vector<AppInfo> apps = {
      detail::makeAMG2013(), detail::makeCoMD(),   detail::makeHPCCG(),
      detail::makeLulesh(),  detail::makeXSBench(), detail::makeMiniFE(),
      detail::makeBT(),      detail::makeCG(),      detail::makeDC(),
      detail::makeEP(),      detail::makeFT(),      detail::makeLU(),
      detail::makeSP(),      detail::makeUA(),
  };
  return apps;
}

const AppInfo* findApp(std::string_view name) {
  for (const auto& app : benchmarkApps()) {
    if (app.name == name) return &app;
  }
  return nullptr;
}

}  // namespace refine::apps
