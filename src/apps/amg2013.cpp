#include "apps/apps.h"

namespace refine::apps::detail {

AppInfo makeAMG2013() {
  AppInfo app;
  app.name = "AMG2013";
  app.paperInput = "-in sstruct.in.MG.FD -r 24 24 24";
  app.description =
      "two-level multigrid V-cycles (Jacobi smoothing, full-weighting "
      "restriction, linear prolongation) on a 1D Poisson problem";
  app.source = R"MC(
// AMG2013 mini-kernel: 2-level geometric multigrid for -u'' = f on [0,1].
var fine_u: f64[130];
var fine_f: f64[130];
var fine_r: f64[130];
var fine_tmp: f64[130];
var coarse_e: f64[66];
var coarse_r: f64[66];
var coarse_tmp: f64[66];
var N: i64 = 128;

fn smooth_fine(sweeps: i64) {
  for (var s: i64 = 0; s < sweeps; s = s + 1) {
    for (var i: i64 = 1; i < N; i = i + 1) {
      fine_tmp[i] = 0.5 * (fine_u[i - 1] + fine_u[i + 1] + fine_f[i]);
    }
    for (var i: i64 = 1; i < N; i = i + 1) { fine_u[i] = fine_tmp[i]; }
  }
}

fn residual_fine() -> f64 {
  var norm: f64 = 0.0;
  for (var i: i64 = 1; i < N; i = i + 1) {
    var r: f64 = fine_f[i] - (2.0 * fine_u[i] - fine_u[i - 1] - fine_u[i + 1]);
    fine_r[i] = r;
    norm = norm + r * r;
  }
  return sqrt(norm);
}

fn smooth_coarse(sweeps: i64) {
  var M: i64 = N / 2;
  for (var s: i64 = 0; s < sweeps; s = s + 1) {
    for (var i: i64 = 1; i < M; i = i + 1) {
      coarse_tmp[i] = 0.5 * (coarse_e[i - 1] + coarse_e[i + 1] + coarse_r[i]);
    }
    for (var i: i64 = 1; i < M; i = i + 1) { coarse_e[i] = coarse_tmp[i]; }
  }
}

fn vcycle() {
  smooth_fine(2);
  residual_fine();
  // Full-weighting restriction of the residual to the coarse grid
  // (factor 4 folds in the h^2 scaling between levels).
  var M: i64 = N / 2;
  for (var i: i64 = 1; i < M; i = i + 1) {
    coarse_r[i] = (fine_r[2 * i - 1] + 2.0 * fine_r[2 * i] + fine_r[2 * i + 1]);
    coarse_e[i] = 0.0;
  }
  coarse_e[0] = 0.0;
  coarse_e[M] = 0.0;
  smooth_coarse(12);
  // Linear prolongation and correction.
  for (var i: i64 = 1; i < M; i = i + 1) {
    fine_u[2 * i] = fine_u[2 * i] + coarse_e[i];
  }
  for (var i: i64 = 0; i < M; i = i + 1) {
    fine_u[2 * i + 1] = fine_u[2 * i + 1] + 0.5 * (coarse_e[i] + coarse_e[i + 1]);
  }
  smooth_fine(2);
}

fn main() -> i64 {
  var h: f64 = 1.0 / f64(N);
  for (var i: i64 = 0; i <= N; i = i + 1) {
    var x: f64 = f64(i) * h;
    fine_u[i] = 0.0;
    fine_f[i] = h * h * (sin(3.14159265358979 * x) * 9.8696 + 1.0);
  }
  print_str("AMG2013 2-level V-cycles");
  for (var cycle: i64 = 0; cycle < 6; cycle = cycle + 1) {
    vcycle();
  }
  var finalResidual: f64 = residual_fine();
  print_f64(finalResidual);
  var mid: f64 = fine_u[N / 2];
  print_f64(mid);
  var norm: f64 = 0.0;
  for (var i: i64 = 0; i <= N; i = i + 1) { norm = norm + fine_u[i] * fine_u[i]; }
  print_f64(sqrt(norm));
  if (finalResidual > 1.0) { return 1; }
  return 0;
}
)MC";
  return app;
}

}  // namespace refine::apps::detail
