#include "apps/apps.h"

namespace refine::apps::detail {

AppInfo makeCG() {
  AppInfo app;
  app.name = "CG";
  app.paperInput = "B";
  app.description =
      "NAS CG: power iteration with a randomized sparse matrix (CSR-style "
      "indirection) estimating the smallest eigenvalue shift zeta";
  app.source = R"MC(
// NAS CG mini-kernel: sparse power iteration.
var rowptr: i64[66];
var colidx: i64[512];
var avals: f64[512];
var xv: f64[66];
var zv: f64[66];
var n: i64 = 64;
var seed: i64 = 271828;

fn lcg() -> i64 {
  seed = (seed * 1103515245 + 12345) % 2147483648;
  if (seed < 0) { seed = -seed; }
  return seed;
}

fn buildMatrix() {
  var nnz: i64 = 0;
  for (var i: i64 = 0; i < n; i = i + 1) {
    rowptr[i] = nnz;
    // Diagonal entry keeps the matrix positive definite-ish.
    colidx[nnz] = i;
    avals[nnz] = 8.0 + f64(lcg() % 4);
    nnz = nnz + 1;
    // A handful of random off-diagonals per row.
    for (var k: i64 = 0; k < 5; k = k + 1) {
      colidx[nnz] = lcg() % n;
      avals[nnz] = -0.5 + f64(lcg() % 100) / 200.0;
      nnz = nnz + 1;
    }
  }
  rowptr[n] = nnz;
}

fn spmv() {
  for (var i: i64 = 0; i < n; i = i + 1) {
    var sum: f64 = 0.0;
    for (var k: i64 = rowptr[i]; k < rowptr[i + 1]; k = k + 1) {
      sum = sum + avals[k] * xv[colidx[k]];
    }
    zv[i] = sum;
  }
}

fn main() -> i64 {
  buildMatrix();
  for (var i: i64 = 0; i < n; i = i + 1) { xv[i] = 1.0; }
  print_str("CG power iteration");
  var zeta: f64 = 0.0;
  for (var it: i64 = 0; it < 12; it = it + 1) {
    spmv();
    var znorm: f64 = 0.0;
    var xz: f64 = 0.0;
    for (var i: i64 = 0; i < n; i = i + 1) {
      znorm = znorm + zv[i] * zv[i];
      xz = xz + xv[i] * zv[i];
    }
    zeta = 10.0 + 1.0 / xz * f64(n);
    znorm = sqrt(znorm);
    for (var i: i64 = 0; i < n; i = i + 1) { xv[i] = zv[i] / znorm; }
  }
  print_f64(zeta);
  var xnorm: f64 = 0.0;
  for (var i: i64 = 0; i < n; i = i + 1) { xnorm = xnorm + xv[i] * xv[i]; }
  print_f64(sqrt(xnorm));
  if (zeta < 0.0) { return 1; }
  return 0;
}
)MC";
  return app;
}

}  // namespace refine::apps::detail
