#include "apps/apps.h"

namespace refine::apps::detail {

AppInfo makeBT() {
  AppInfo app;
  app.name = "BT";
  app.paperInput = "A";
  app.description =
      "block-tridiagonal line solver: repeated Thomas-algorithm sweeps over "
      "coupled lines, as in the NAS BT implicit solver";
  app.source = R"MC(
// NAS BT mini-kernel: batches of tridiagonal line solves with coupling.
var lower: f64[64];
var diag: f64[64];
var upper: f64[64];
var rhs: f64[512];      // 8 lines x 64 cells
var sol: f64[512];
var cprime: f64[64];
var dprime: f64[64];
var lineLen: i64 = 64;
var nLines: i64 = 8;

fn solveLine(line: i64) {
  var base: i64 = line * lineLen;
  cprime[0] = upper[0] / diag[0];
  dprime[0] = rhs[base] / diag[0];
  for (var i: i64 = 1; i < lineLen; i = i + 1) {
    var m: f64 = diag[i] - lower[i] * cprime[i - 1];
    cprime[i] = upper[i] / m;
    dprime[i] = (rhs[base + i] - lower[i] * dprime[i - 1]) / m;
  }
  sol[base + lineLen - 1] = dprime[lineLen - 1];
  for (var i: i64 = lineLen - 2; i >= 0; i = i - 1) {
    sol[base + i] = dprime[i] - cprime[i] * sol[base + i + 1];
  }
}

fn main() -> i64 {
  for (var i: i64 = 0; i < lineLen; i = i + 1) {
    lower[i] = -1.0;
    diag[i] = 4.0 + 0.01 * f64(i);
    upper[i] = -1.0;
  }
  for (var l: i64 = 0; l < nLines; l = l + 1) {
    for (var i: i64 = 0; i < lineLen; i = i + 1) {
      rhs[l * lineLen + i] = sin(f64(l) + f64(i) * 0.2) + 1.5;
    }
  }
  print_str("BT line solves");
  // Outer iterations couple neighbouring lines through their solutions.
  for (var sweep: i64 = 0; sweep < 6; sweep = sweep + 1) {
    for (var l: i64 = 0; l < nLines; l = l + 1) { solveLine(l); }
    for (var l: i64 = 0; l < nLines; l = l + 1) {
      var neighbor: i64 = (l + 1) % nLines;
      for (var i: i64 = 0; i < lineLen; i = i + 1) {
        rhs[l * lineLen + i] = 0.7 * rhs[l * lineLen + i] +
                               0.3 * sol[neighbor * lineLen + i];
      }
    }
  }
  var checksum: f64 = 0.0;
  for (var k: i64 = 0; k < nLines * lineLen; k = k + 1) {
    checksum = checksum + sol[k] * sol[k];
  }
  print_f64(sqrt(checksum));
  print_f64(sol[lineLen / 2]);
  print_f64(sol[nLines * lineLen - 1]);
  if (checksum > 1.0e6) { return 1; }
  return 0;
}
)MC";
  return app;
}

}  // namespace refine::apps::detail
