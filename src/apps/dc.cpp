#include "apps/apps.h"

namespace refine::apps::detail {

AppInfo makeDC() {
  AppInfo app;
  app.name = "DC";
  app.paperInput = "W";
  app.description =
      "NAS DC data cube: integer-heavy group-by aggregation of synthetic "
      "tuples into a 3-dimensional cube plus roll-up views and checksums";
  app.source = R"MC(
// NAS DC mini-kernel: build a data cube and aggregate views over it.
var cube: i64[256];      // 8 x 8 x 4 cells
var viewD1: i64[8];
var viewD1D2: i64[64];
var seed: i64 = 900913;
var nTuples: i64 = 900;

fn lcg() -> i64 {
  seed = (seed * 1103515245 + 12345) % 2147483648;
  if (seed < 0) { seed = -seed; }
  return seed;
}

fn main() -> i64 {
  print_str("DC data cube");
  // Ingest tuples: (d1, d2, d3, measure).
  for (var t: i64 = 0; t < nTuples; t = t + 1) {
    var d1: i64 = lcg() % 8;
    var d2: i64 = lcg() % 8;
    var d3: i64 = lcg() % 4;
    var measure: i64 = lcg() % 1000;
    var cell: i64 = d1 * 32 + d2 * 4 + d3;
    cube[cell] = cube[cell] + measure;
  }
  // Roll-ups.
  var total: i64 = 0;
  for (var d1: i64 = 0; d1 < 8; d1 = d1 + 1) {
    for (var d2: i64 = 0; d2 < 8; d2 = d2 + 1) {
      var cellSum: i64 = 0;
      for (var d3: i64 = 0; d3 < 4; d3 = d3 + 1) {
        cellSum = cellSum + cube[d1 * 32 + d2 * 4 + d3];
      }
      viewD1D2[d1 * 8 + d2] = cellSum;
      viewD1[d1] = viewD1[d1] + cellSum;
      total = total + cellSum;
    }
  }
  // Checksums over every view (order-sensitive rolling hashes).
  var h1: i64 = 0;
  for (var i: i64 = 0; i < 8; i = i + 1) {
    h1 = (h1 * 131 + viewD1[i]) % 1000000007;
  }
  var h2: i64 = 0;
  for (var i: i64 = 0; i < 64; i = i + 1) {
    h2 = (h2 * 131 + viewD1D2[i]) % 1000000007;
  }
  var h3: i64 = 0;
  for (var i: i64 = 0; i < 256; i = i + 1) {
    h3 = (h3 * 131 + cube[i]) % 1000000007;
  }
  print_i64(total);
  print_i64(h1);
  print_i64(h2);
  print_i64(h3);
  // Cross-check: the d1 view must sum to the grand total.
  var crossCheck: i64 = 0;
  for (var i: i64 = 0; i < 8; i = i + 1) { crossCheck = crossCheck + viewD1[i]; }
  if (crossCheck != total) { return 1; }
  return 0;
}
)MC";
  return app;
}

}  // namespace refine::apps::detail
