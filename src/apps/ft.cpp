#include "apps/apps.h"

namespace refine::apps::detail {

AppInfo makeFT() {
  AppInfo app;
  app.name = "FT";
  app.paperInput = "B";
  app.description =
      "NAS FT: radix-2 complex FFT with bit-reversal permutation, spectral "
      "evolution steps and inverse transform, checksummed per step";
  app.source = R"MC(
// NAS FT mini-kernel: FFT -> evolve -> inverse FFT cycles.
var re: f64[64];
var im: f64[64];
var nPoints: i64 = 64;
var pi: f64 = 3.14159265358979;

fn bitReverse() {
  var j: i64 = 0;
  for (var i: i64 = 0; i < nPoints - 1; i = i + 1) {
    if (i < j) {
      var tr: f64 = re[i]; re[i] = re[j]; re[j] = tr;
      var ti: f64 = im[i]; im[i] = im[j]; im[j] = ti;
    }
    var mask: i64 = nPoints / 2;
    while (mask >= 1 && j >= mask) {
      j = j - mask;
      mask = mask / 2;
    }
    j = j + mask;
  }
}

// direction: 1.0 forward, -1.0 inverse (unnormalized).
fn fft(direction: f64) {
  bitReverse();
  var len: i64 = 2;
  while (len <= nPoints) {
    var ang: f64 = direction * -2.0 * pi / f64(len);
    var half: i64 = len / 2;
    for (var start: i64 = 0; start < nPoints; start = start + len) {
      for (var k: i64 = 0; k < half; k = k + 1) {
        var wr: f64 = cos(ang * f64(k));
        var wi: f64 = sin(ang * f64(k));
        var i0: i64 = start + k;
        var i1: i64 = start + k + half;
        var xr: f64 = re[i1] * wr - im[i1] * wi;
        var xi: f64 = re[i1] * wi + im[i1] * wr;
        re[i1] = re[i0] - xr;
        im[i1] = im[i0] - xi;
        re[i0] = re[i0] + xr;
        im[i0] = im[i0] + xi;
      }
    }
    len = len * 2;
  }
}

fn checksum() -> f64 {
  var s: f64 = 0.0;
  for (var i: i64 = 0; i < nPoints; i = i + 1) {
    s = s + re[i] * re[i] + im[i] * im[i];
  }
  return sqrt(s);
}

fn main() -> i64 {
  for (var i: i64 = 0; i < nPoints; i = i + 1) {
    re[i] = sin(f64(i) * 0.42) + 0.5;
    im[i] = 0.0;
  }
  print_str("FT spectral evolution");
  fft(1.0);
  for (var step: i64 = 0; step < 4; step = step + 1) {
    // Evolve: damp each mode slightly (diffusion in spectral space).
    for (var i: i64 = 0; i < nPoints; i = i + 1) {
      var k: i64 = i;
      if (k > nPoints / 2) { k = nPoints - k; }
      var damp: f64 = exp(-0.001 * f64(k * k));
      re[i] = re[i] * damp;
      im[i] = im[i] * damp;
    }
    print_f64(checksum());
  }
  fft(-1.0);
  // Normalize the inverse transform.
  for (var i: i64 = 0; i < nPoints; i = i + 1) {
    re[i] = re[i] / f64(nPoints);
    im[i] = im[i] / f64(nPoints);
  }
  print_f64(checksum());
  print_f64(re[7]);
  if (checksum() > 1.0e6) { return 1; }
  return 0;
}
)MC";
  return app;
}

}  // namespace refine::apps::detail
