#include "apps/apps.h"

namespace refine::apps::detail {

AppInfo makeXSBench() {
  AppInfo app;
  app.name = "XSBench";
  app.paperInput = "-s small";
  app.description =
      "macroscopic cross-section lookups: binary search on a sorted energy "
      "grid plus per-nuclide linear interpolation, verification checksum";
  app.source = R"MC(
// XSBench mini-kernel: randomized cross-section table lookups.
var egrid: f64[128];
var xsdata: f64[1024];   // 128 grid points x 8 nuclides
var conc: f64[8];
var seed: i64 = 1337;
var nGrid: i64 = 128;
var nNuclides: i64 = 8;

fn lcg() -> i64 {
  seed = (seed * 1103515245 + 12345) % 2147483648;
  if (seed < 0) { seed = -seed; }
  return seed;
}

fn rand01() -> f64 {
  return f64(lcg()) / 2147483648.0;
}

fn gridSearch(energy: f64) -> i64 {
  var lo: i64 = 0;
  var hi: i64 = nGrid - 1;
  while (hi - lo > 1) {
    var mid: i64 = (lo + hi) / 2;
    if (egrid[mid] > energy) { hi = mid; } else { lo = mid; }
  }
  return lo;
}

fn main() -> i64 {
  // Sorted energy grid and synthetic per-nuclide cross sections.
  for (var i: i64 = 0; i < nGrid; i = i + 1) {
    egrid[i] = f64(i) / f64(nGrid) + 0.001 * sin(f64(i));
  }
  // Keep the grid strictly sorted despite the jitter.
  for (var i: i64 = 1; i < nGrid; i = i + 1) {
    if (egrid[i] <= egrid[i - 1]) { egrid[i] = egrid[i - 1] + 0.0005; }
  }
  for (var n: i64 = 0; n < nNuclides; n = n + 1) {
    conc[n] = 0.1 + 0.05 * f64(n);
    for (var i: i64 = 0; i < nGrid; i = i + 1) {
      xsdata[n * 128 + i] = 1.0 + 0.5 * sin(f64(i) * 0.3 + f64(n));
    }
  }
  print_str("XSBench lookups");
  var vhash: i64 = 0;
  var macroSum: f64 = 0.0;
  for (var lookup: i64 = 0; lookup < 700; lookup = lookup + 1) {
    var energy: f64 = rand01() * 0.98;
    var idx: i64 = gridSearch(energy);
    var f: f64 = (energy - egrid[idx]) / (egrid[idx + 1] - egrid[idx]);
    var macro: f64 = 0.0;
    for (var n: i64 = 0; n < nNuclides; n = n + 1) {
      var lo: f64 = xsdata[n * 128 + idx];
      var hi: f64 = xsdata[n * 128 + idx + 1];
      macro = macro + conc[n] * (lo + f * (hi - lo));
    }
    macroSum = macroSum + macro;
    vhash = (vhash * 31 + idx + i64(macro * 1000.0)) % 1000000007;
  }
  print_i64(vhash);
  print_f64(macroSum);
  if (vhash < 0) { return 1; }
  return 0;
}
)MC";
  return app;
}

}  // namespace refine::apps::detail
