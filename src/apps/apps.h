// The 14 HPC benchmark programs of the paper's evaluation (Table 3),
// reimplemented as deterministic MiniC mini-kernels.
//
// Each kernel keeps the computational character of its namesake (memory-bound
// stencils, FP-heavy force loops, integer aggregation, irregular access,
// transforms, ...) at a scale of roughly 10^5-10^6 dynamic machine
// instructions so that full 1068-trial campaigns stay laptop-runnable.
// The paper's original input is recorded verbatim for traceability; the
// scaled parameters live inside each source.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace refine::apps {

struct AppInfo {
  std::string name;         // the paper's benchmark name
  std::string paperInput;   // Table 3 input of the original program
  std::string description;  // what our mini-kernel computes
  std::string source;       // MiniC program
};

/// All 14 benchmarks in the paper's Table 3 order.
const std::vector<AppInfo>& benchmarkApps();

/// Lookup by name; nullptr when unknown.
const AppInfo* findApp(std::string_view name);

namespace detail {
AppInfo makeAMG2013();
AppInfo makeCoMD();
AppInfo makeHPCCG();
AppInfo makeLulesh();
AppInfo makeXSBench();
AppInfo makeMiniFE();
AppInfo makeBT();
AppInfo makeCG();
AppInfo makeDC();
AppInfo makeEP();
AppInfo makeFT();
AppInfo makeLU();
AppInfo makeSP();
AppInfo makeUA();
}  // namespace detail

}  // namespace refine::apps
