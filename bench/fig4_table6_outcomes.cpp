// Reproduces Figure 4 and Table 6 of the paper: fault-injection outcome
// distributions (crash / SOC / benign) for all 14 benchmarks under LLFI,
// REFINE and PINFI, with 95% confidence intervals, plus a side-by-side
// comparison against the paper's published Table 6 proportions.
#include <cstdio>

#include "bench/common.h"
#include "campaign/paperdata.h"
#include "campaign/report.h"

namespace {

using refine::campaign::CampaignResult;
using refine::campaign::paperTable6;

double pct(std::uint64_t part, std::uint64_t total) {
  return total == 0 ? 0.0 : 100.0 * static_cast<double>(part) / static_cast<double>(total);
}

void printPaperComparison(const refine::bench::FullCampaign& campaign) {
  std::printf("\n--- measured vs paper (percentages; paper at n=1068) ---\n");
  std::printf("%-10s %-7s   %18s   %18s   %18s\n", "app", "tool",
              "crash meas/paper", "soc meas/paper", "benign meas/paper");
  for (std::size_t a = 0; a < campaign.appNames.size(); ++a) {
    const refine::campaign::PaperRow* paper = nullptr;
    for (const auto& row : paperTable6()) {
      if (campaign.appNames[a] == row.app) paper = &row;
    }
    if (paper == nullptr) continue;
    for (const CampaignResult& r : campaign.results[a]) {
      const std::uint64_t* paperCounts =
          r.tool == "LLFI" ? paper->llfi
          : r.tool == "REFINE" ? paper->refine
          : r.tool == "PINFI" ? paper->pinfi
                              : nullptr;
      if (paperCounts == nullptr) continue;  // no paper data for this tool
      const std::uint64_t n = r.counts.total();
      std::printf("%-10s %-7s   %7.1f%% /%6.1f%%   %7.1f%% /%6.1f%%   %7.1f%% /%6.1f%%\n",
                  r.app.c_str(), r.tool.c_str(),
                  pct(r.counts.crash, n), pct(paperCounts[0], 1068),
                  pct(r.counts.soc, n), pct(paperCounts[1], 1068),
                  pct(r.counts.benign, n), pct(paperCounts[2], 1068));
    }
  }
}

}  // namespace

int main() {
  const auto campaign = refine::bench::loadOrRunFullCampaign();

  std::printf("=== Figure 4: outcome distributions (%llu trials/tool, 95%% CI) ===\n",
              static_cast<unsigned long long>(campaign.config.trials));
  for (std::size_t a = 0; a < campaign.appNames.size(); ++a) {
    for (const CampaignResult& r : campaign.results[a]) {
      std::printf("%s\n", refine::campaign::figure4Row(r).c_str());
    }
    std::printf("\n");
  }

  std::printf("=== Table 6: complete outcome frequencies (crash / SOC / benign) ===\n");
  for (std::size_t a = 0; a < campaign.appNames.size(); ++a) {
    std::printf("%s", refine::campaign::table6Block(campaign.appNames[a],
                                                    campaign.results[a])
                          .c_str());
  }

  printPaperComparison(campaign);

  std::printf("\n=== CSV export ===\n");
  std::vector<CampaignResult> flat;
  for (const auto& perApp : campaign.results) {
    for (const auto& r : perApp) flat.push_back(r);
  }
  std::printf("%s", refine::campaign::resultsCsv(flat).c_str());
  return 0;
}
