// Microbenchmark ablations (google-benchmark): where does each tool's
// runtime overhead come from?
//
//  * Native          — uninstrumented binary, the baseline.
//  * RefineFullRun   — REFINE binary with the library counting every
//                      instrumented instruction (basic-block instrumentation
//                      cost; no function calls in the fast path).
//  * PinfiHooked     — per-instruction DBI callback for the whole run
//                      (what PINFI pays before its detach point).
//  * PinfiDetached   — injection at the halfway point followed by detach
//                      (the optimization the paper added to PINFI).
//  * LlfiRun         — LLFI binary: guest-level function-call
//                      instrumentation plus degraded code generation.
//
// Also measures compile-time cost of each instrumentation pass (the paper
// notes compilation happens once and is excluded from campaign time).
#include <benchmark/benchmark.h>

#include "apps/apps.h"
#include "backend/compile.h"
#include "fi/llfi_pass.h"
#include "fi/pinfi.h"
#include "fi/refine_pass.h"
#include "frontend/compile.h"
#include "opt/passes.h"
#include "vm/machine.h"

namespace {

using namespace refine;

constexpr std::uint64_t kBudget = 1'000'000'000;

const apps::AppInfo& app() { return *apps::findApp("HPCCG-1.0"); }

std::unique_ptr<ir::Module> optimized() {
  auto module = fe::compileToIR(app().source);
  opt::optimize(*module, opt::OptLevel::O2);
  return module;
}

void BM_Native(benchmark::State& state) {
  auto module = optimized();
  const auto compiled = backend::compileBackend(*module);
  std::uint64_t instrs = 0;
  for (auto _ : state) {
    vm::Machine machine(compiled.program);
    const auto r = machine.run(kBudget);
    instrs = r.instrCount;
    benchmark::DoNotOptimize(r.exitCode);
  }
  state.counters["guest_instrs"] = static_cast<double>(instrs);
}
BENCHMARK(BM_Native);

void BM_RefineFullRun(benchmark::State& state) {
  auto module = optimized();
  const auto compiled = fi::compileWithRefine(*module, fi::FiConfig::allOn());
  std::uint64_t instrs = 0;
  for (auto _ : state) {
    auto library = fi::FaultInjectionLibrary::profiling(&compiled.sites);
    vm::Machine machine(compiled.program);
    machine.setFiRuntime(&library);
    const auto r = machine.run(kBudget);
    instrs = r.instrCount;
    benchmark::DoNotOptimize(r.exitCode);
  }
  state.counters["guest_instrs"] = static_cast<double>(instrs);
}
BENCHMARK(BM_RefineFullRun);

void BM_PinfiHooked(benchmark::State& state) {
  auto module = optimized();
  const auto compiled = backend::compileBackend(*module);
  fi::Pinfi engine(compiled.program, fi::FiConfig::allOn());
  for (auto _ : state) {
    const auto r = engine.profile(kBudget);
    benchmark::DoNotOptimize(r.dynamicTargets);
  }
}
BENCHMARK(BM_PinfiHooked);

void BM_PinfiDetached(benchmark::State& state) {
  auto module = optimized();
  const auto compiled = backend::compileBackend(*module);
  fi::Pinfi engine(compiled.program, fi::FiConfig::allOn());
  const auto targets = engine.profile(kBudget).dynamicTargets;
  for (auto _ : state) {
    const auto r = engine.inject(targets / 2, 1, kBudget);
    benchmark::DoNotOptimize(r.exec.instrCount);
  }
}
BENCHMARK(BM_PinfiDetached);

void BM_LlfiRun(benchmark::State& state) {
  auto module = optimized();
  const auto info = fi::applyLlfiPass(*module, fi::FiConfig::allOn());
  const auto compiled = backend::compileBackend(*module);
  std::uint64_t instrs = 0;
  for (auto _ : state) {
    vm::Machine machine(compiled.program);
    machine.pokeGlobal(info.targetAddr, 0);
    const auto r = machine.run(kBudget);
    instrs = r.instrCount;
    benchmark::DoNotOptimize(r.exitCode);
  }
  state.counters["guest_instrs"] = static_cast<double>(instrs);
}
BENCHMARK(BM_LlfiRun);

// --- compile-time cost ------------------------------------------------------

void BM_CompileBaseline(benchmark::State& state) {
  for (auto _ : state) {
    auto module = optimized();
    const auto compiled = backend::compileBackend(*module);
    benchmark::DoNotOptimize(compiled.program.code.size());
  }
}
BENCHMARK(BM_CompileBaseline);

void BM_CompileWithRefinePass(benchmark::State& state) {
  for (auto _ : state) {
    auto module = optimized();
    const auto compiled = fi::compileWithRefine(*module, fi::FiConfig::allOn());
    benchmark::DoNotOptimize(compiled.program.code.size());
  }
}
BENCHMARK(BM_CompileWithRefinePass);

void BM_CompileWithLlfiPass(benchmark::State& state) {
  for (auto _ : state) {
    auto module = optimized();
    const auto info = fi::applyLlfiPass(*module, fi::FiConfig::allOn());
    const auto compiled = backend::compileBackend(*module);
    benchmark::DoNotOptimize(compiled.program.code.size() + info.staticTargets);
  }
}
BENCHMARK(BM_CompileWithLlfiPass);

}  // namespace

BENCHMARK_MAIN();
