// Reproduces Table 4 and Table 5 of the paper: the example contingency table
// (AMG2013, LLFI vs PINFI) and the chi-squared homogeneity tests of each
// tool against the PINFI baseline at significance level alpha = 0.05.
//
// Success criterion (paper Sec. 5.4.2): LLFI is significantly different from
// PINFI on every application; REFINE is different on none.
#include <cstdio>

#include "bench/common.h"
#include "campaign/report.h"

int main() {
  using refine::campaign::CampaignResult;
  using refine::campaign::Tool;
  const auto campaign = refine::bench::loadOrRunFullCampaign();

  // Table 4: the worked example.
  for (std::size_t a = 0; a < campaign.appNames.size(); ++a) {
    if (campaign.appNames[a] != "AMG2013") continue;
    std::printf("=== Table 4: contingency table, LLFI vs PINFI (AMG2013) ===\n");
    std::printf("%s\n", refine::campaign::contingencyTable(
                            campaign.results[a][0],  // LLFI
                            campaign.results[a][2])  // PINFI
                            .c_str());
  }

  std::printf("=== Table 5: chi-squared tests vs PINFI (alpha = 0.05) ===\n");
  int llfiDifferent = 0;
  int refineDifferent = 0;
  std::printf("-- LLFI vs PINFI --\n");
  for (std::size_t a = 0; a < campaign.appNames.size(); ++a) {
    const CampaignResult& llfi = campaign.results[a][0];
    const CampaignResult& pinfi = campaign.results[a][2];
    const auto test = refine::campaign::compareTools(llfi, pinfi);
    if (test.valid && test.pValue < 0.05) ++llfiDifferent;
    std::printf("%s\n", refine::campaign::table5Line(llfi, pinfi).c_str());
  }
  std::printf("-- REFINE vs PINFI --\n");
  for (std::size_t a = 0; a < campaign.appNames.size(); ++a) {
    const CampaignResult& refined = campaign.results[a][1];
    const CampaignResult& pinfi = campaign.results[a][2];
    const auto test = refine::campaign::compareTools(refined, pinfi);
    if (test.valid && test.pValue < 0.05) ++refineDifferent;
    std::printf("%s\n", refine::campaign::table5Line(refined, pinfi).c_str());
  }

  const auto nApps = static_cast<int>(campaign.appNames.size());
  std::printf(
      "\nsummary: LLFI differs on %d/%d apps (paper: 14/14); REFINE differs "
      "on %d/%d apps (paper: 0/14)\n",
      llfiDifferent, nApps, refineDifferent, nApps);
  std::printf("%s\n", llfiDifferent >= nApps - 2 && refineDifferent <= 1
                          ? "REPRODUCTION: shape HOLDS"
                          : "REPRODUCTION: shape DEVIATES — inspect above");
  return 0;
}
