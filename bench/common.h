// Shared campaign driver for the table/figure benches.
//
// Each bench binary regenerates one of the paper's tables or figures from
// the same full campaign (14 apps x 3 tools x REFINE_TRIALS trials). The
// first bench to run performs the campaign and caches the results as CSV
// next to the build; later benches (same trial count and seed) reuse it, so
// `for b in build/bench/*; do $b; done` runs the heavy experiment once.
//
// Environment knobs:
//   REFINE_TRIALS   trials per (app, tool); default 1068 (the paper's n)
//   REFINE_THREADS  worker threads; default: hardware concurrency
//   REFINE_NO_CACHE set to disable reading/writing the cache
#pragma once

#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "campaign/runner.h"

namespace refine::bench {

struct FullCampaign {
  campaign::CampaignConfig config;
  /// Results indexed [app][tool] with tools in order LLFI, REFINE, PINFI.
  std::vector<std::vector<campaign::CampaignResult>> results;
  std::vector<std::string> appNames;
  bool fromCache = false;
};

/// Reads knobs from the environment.
campaign::CampaignConfig configFromEnv();

/// Runs (or loads) the full campaign. Fresh runs go through one shared
/// CampaignEngine pool: all (app x tool) cells are compiled, profiled and
/// trial-scheduled together instead of as 42 sequential barrier campaigns.
FullCampaign loadOrRunFullCampaign();

/// The three tools in reporting order (injector registry keys).
inline const std::vector<std::string>& toolOrder() {
  static const std::vector<std::string> order = {"LLFI", "REFINE", "PINFI"};
  return order;
}

}  // namespace refine::bench
