#include "bench/common.h"

#include <cstdio>

#include "apps/apps.h"
#include "campaign/engine.h"
#include "support/strings.h"
#include "support/threadpool.h"
#include "support/timer.h"

namespace refine::bench {

namespace {

std::uint64_t envU64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

std::string cachePath(const campaign::CampaignConfig& config) {
  return strf("refine_campaign_cache_t%llu_s%llx.csv",
              static_cast<unsigned long long>(config.trials),
              static_cast<unsigned long long>(config.baseSeed));
}

/// Cache format: one line per result,
/// app,tool,crash,soc,benign,seconds,dynTargets,profileInstrs,binarySize
std::optional<FullCampaign> tryLoadCache(const campaign::CampaignConfig& config) {
  std::string content;
  try {
    content = readFile(cachePath(config));
  } catch (const std::exception&) {
    return std::nullopt;
  }
  FullCampaign out;
  out.config = config;
  out.fromCache = true;
  for (const auto& app : apps::benchmarkApps()) {
    out.appNames.push_back(app.name);
    out.results.emplace_back();
  }
  std::size_t parsed = 0;
  for (const auto& line : split(content, '\n')) {
    if (trim(line).empty()) continue;
    const auto fields = split(line, ',');
    if (fields.size() != 9) return std::nullopt;
    campaign::CampaignResult r;
    r.app = fields[0];
    bool knownTool = false;
    for (const auto& tool : toolOrder()) knownTool |= (fields[1] == tool);
    if (!knownTool) return std::nullopt;
    r.tool = fields[1];
    r.counts.crash = std::strtoull(fields[2].c_str(), nullptr, 10);
    r.counts.soc = std::strtoull(fields[3].c_str(), nullptr, 10);
    r.counts.benign = std::strtoull(fields[4].c_str(), nullptr, 10);
    r.totalTrialSeconds = std::strtod(fields[5].c_str(), nullptr);
    r.dynamicTargets = std::strtoull(fields[6].c_str(), nullptr, 10);
    r.profileInstrs = std::strtoull(fields[7].c_str(), nullptr, 10);
    r.binarySize = std::strtoull(fields[8].c_str(), nullptr, 10);
    bool placed = false;
    for (std::size_t a = 0; a < out.appNames.size(); ++a) {
      if (out.appNames[a] == r.app) {
        out.results[a].push_back(std::move(r));
        placed = true;
        break;
      }
    }
    if (!placed) return std::nullopt;
    ++parsed;
  }
  if (parsed != apps::benchmarkApps().size() * toolOrder().size()) return std::nullopt;
  // Normalize tool order within each app.
  for (auto& perApp : out.results) {
    std::vector<campaign::CampaignResult> ordered;
    for (const auto& tool : toolOrder()) {
      for (auto& r : perApp) {
        if (r.tool == tool) ordered.push_back(std::move(r));
      }
    }
    if (ordered.size() != toolOrder().size()) return std::nullopt;
    perApp = std::move(ordered);
  }
  return out;
}

void saveCache(const FullCampaign& campaign) {
  std::string content;
  for (const auto& perApp : campaign.results) {
    for (const auto& r : perApp) {
      content += strf("%s,%s,%llu,%llu,%llu,%.6f,%llu,%llu,%llu\n",
                      r.app.c_str(), r.tool.c_str(),
                      static_cast<unsigned long long>(r.counts.crash),
                      static_cast<unsigned long long>(r.counts.soc),
                      static_cast<unsigned long long>(r.counts.benign),
                      r.totalTrialSeconds,
                      static_cast<unsigned long long>(r.dynamicTargets),
                      static_cast<unsigned long long>(r.profileInstrs),
                      static_cast<unsigned long long>(r.binarySize));
    }
  }
  try {
    writeFile(cachePath(campaign.config), content);
  } catch (const std::exception&) {
    // Non-fatal: cache is an optimization only.
  }
}

}  // namespace

campaign::CampaignConfig configFromEnv() {
  campaign::CampaignConfig config;
  config.trials = envU64("REFINE_TRIALS", 1068);
  config.threads = static_cast<unsigned>(envU64("REFINE_THREADS", 0));
  return config;
}

FullCampaign loadOrRunFullCampaign() {
  const campaign::CampaignConfig config = configFromEnv();
  const bool noCache = std::getenv("REFINE_NO_CACHE") != nullptr;
  if (!noCache) {
    if (auto cached = tryLoadCache(config)) {
      std::fprintf(stderr,
                   "[bench] reusing cached campaign (%s); set REFINE_NO_CACHE "
                   "to recompute\n",
                   cachePath(config).c_str());
      return *std::move(cached);
    }
  }

  FullCampaign out;
  out.config = config;
  const auto& apps = apps::benchmarkApps();
  std::fprintf(stderr,
               "[bench] running full campaign: %zu apps x %zu tools x %llu "
               "trials on %u threads (one shared pool)\n",
               apps.size(), toolOrder().size(),
               static_cast<unsigned long long>(config.trials),
               config.threads == 0 ? hardwareThreads() : config.threads);
  WallTimer total;

  // The whole (app x tool) matrix goes through one engine: every cell's
  // trial chunks share the work-stealing pool, so no cell's stragglers idle
  // the machine while the next cell waits.
  std::vector<campaign::MatrixJob> jobs;
  for (const auto& app : apps) {
    for (const auto& tool : toolOrder()) {
      jobs.push_back({app.name, tool, app.source, fi::FiConfig::allOn()});
    }
  }
  campaign::CampaignEngine engine(config);
  auto results =
      engine.runMatrix(jobs, [&](const campaign::CampaignResult& r) {
        // Streams from worker threads as each cell finishes, so a long
        // matrix shows progress instead of going silent until the drain.
        std::fprintf(stderr, "[bench]   %-10s %-7s %6.1fs work (%.1fs wall)\n",
                     r.app.c_str(), r.tool.c_str(), r.totalTrialSeconds,
                     total.seconds());
      });

  for (const auto& app : apps) {
    out.appNames.push_back(app.name);
    out.results.emplace_back();
  }
  for (std::size_t i = 0; i < results.size(); ++i) {
    out.results[i / toolOrder().size()].push_back(std::move(results[i]));
  }
  std::fprintf(stderr, "[bench] campaign finished in %.1fs wall\n",
               total.seconds());
  if (!noCache) saveCache(out);
  return out;
}

}  // namespace refine::bench
