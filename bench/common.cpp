#include "bench/common.h"

#include <cstdio>
#include <optional>

#include "apps/apps.h"
#include "campaign/engine.h"
#include "campaign/persist.h"
#include "support/strings.h"
#include "support/threadpool.h"
#include "support/timer.h"

namespace refine::bench {

namespace {

std::uint64_t envU64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

std::string cachePath(const campaign::CampaignConfig& config) {
  return strf("refine_campaign_cache_t%llu_s%llx.ckpt",
              static_cast<unsigned long long>(config.trials),
              static_cast<unsigned long long>(config.baseSeed));
}

/// Arranges flat checkpoint records into the [app][tool] grid; nullopt
/// unless every (app, tool) cell is present exactly once.
std::optional<FullCampaign> arrange(
    const std::vector<campaign::CampaignResult>& records,
    const campaign::CampaignConfig& config) {
  FullCampaign out;
  out.config = config;
  out.fromCache = true;
  for (const auto& app : apps::benchmarkApps()) {
    out.appNames.push_back(app.name);
    out.results.emplace_back();
  }
  for (std::size_t a = 0; a < out.appNames.size(); ++a) {
    for (const auto& tool : toolOrder()) {
      const campaign::CampaignResult* found = nullptr;
      for (const auto& r : records) {
        if (r.app == out.appNames[a] && r.tool == tool) {
          if (found != nullptr) return std::nullopt;  // duplicate cell
          found = &r;
        }
      }
      if (found == nullptr) return std::nullopt;  // incomplete campaign
      out.results[a].push_back(*found);
    }
  }
  return out;
}

}  // namespace

campaign::CampaignConfig configFromEnv() {
  campaign::CampaignConfig config;
  config.trials = envU64("REFINE_TRIALS", 1068);
  config.threads = static_cast<unsigned>(envU64("REFINE_THREADS", 0));
  return config;
}

FullCampaign loadOrRunFullCampaign() {
  const campaign::CampaignConfig config = configFromEnv();
  const bool noCache = std::getenv("REFINE_NO_CACHE") != nullptr;

  // The cache IS a checkpoint store: a complete one is returned without
  // running anything, and a partial one (an interrupted earlier bench run)
  // resumes — only the missing cells execute.
  std::optional<campaign::CheckpointStore> store;
  if (!noCache) {
    const auto openAndBind = [&] {
      store.emplace(cachePath(config));
      // Bind the campaign meta eagerly (the engine would do it inside
      // runMatrix anyway): a cache from a different campaign — including a
      // pre-fault-model store without the tools= binding — fails HERE,
      // where it can be discarded, instead of aborting the bench mid-run.
      store->bindCampaign({config.baseSeed, config.trials,
                           config.timeoutFactor, join(toolOrder(), ";")});
    };
    try {
      openAndBind();
    } catch (const std::exception& e) {
      // A foreign/unreadable/mis-bound file at the cache path: discard it
      // and start a fresh store so one bad file doesn't disable caching
      // forever.
      std::fprintf(stderr, "[bench] discarding unusable campaign cache: %s\n",
                   e.what());
      store.reset();
      std::remove(cachePath(config).c_str());
      try {
        openAndBind();
      } catch (const std::exception&) {
        // Non-fatal: the cache is an optimization only (e.g. read-only cwd).
        store.reset();
      }
    }
  }
  if (store) {
    if (auto cached = arrange(store->records(), config)) {
      std::fprintf(stderr,
                   "[bench] reusing cached campaign (%s); set REFINE_NO_CACHE "
                   "to recompute\n",
                   cachePath(config).c_str());
      return *std::move(cached);
    }
    if (!store->records().empty()) {
      std::fprintf(stderr,
                   "[bench] resuming interrupted campaign (%s): %zu cells "
                   "already done\n",
                   cachePath(config).c_str(), store->records().size());
    }
  }

  FullCampaign out;
  out.config = config;
  const auto& apps = apps::benchmarkApps();
  std::fprintf(stderr,
               "[bench] running full campaign: %zu apps x %zu tools x %llu "
               "trials on %u threads (one shared pool)\n",
               apps.size(), toolOrder().size(),
               static_cast<unsigned long long>(config.trials),
               config.threads == 0 ? hardwareThreads() : config.threads);
  WallTimer total;

  // The whole (app x tool) matrix goes through one engine: every cell's
  // trial chunks share the work-stealing pool, so no cell's stragglers idle
  // the machine while the next cell waits.
  std::vector<campaign::MatrixJob> jobs;
  for (const auto& app : apps) {
    for (const auto& tool : toolOrder()) {
      jobs.push_back({app.name, tool, app.source, fi::FiConfig::allOn()});
    }
  }
  campaign::CampaignEngine engine(config);
  campaign::MatrixOptions options;
  options.checkpoint = store ? &*store : nullptr;
  auto results = engine.runMatrix(
      jobs, options, [&](const campaign::CampaignResult& r) {
        // Streams from worker threads as each cell finishes, so a long
        // matrix shows progress instead of going silent until the drain.
        std::fprintf(stderr, "[bench]   %-10s %-7s %6.1fs work (%.1fs wall)\n",
                     r.app.c_str(), r.tool.c_str(), r.totalTrialSeconds,
                     total.seconds());
      });

  for (const auto& app : apps) {
    out.appNames.push_back(app.name);
    out.results.emplace_back();
  }
  for (std::size_t i = 0; i < results.size(); ++i) {
    out.results[i / toolOrder().size()].push_back(std::move(results[i]));
  }
  std::fprintf(stderr, "[bench] campaign finished in %.1fs wall\n",
               total.seconds());
  return out;
}

}  // namespace refine::bench
