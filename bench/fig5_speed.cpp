// Reproduces Figure 5 of the paper: total fault-injection campaign execution
// time per application for LLFI and REFINE, normalized to PINFI, plus the
// aggregated total.
//
// Success criteria (paper Sec. 5.5): LLFI is several times slower than PINFI
// overall (3.9x in the paper) except where early crashes shorten its runs
// (EP); REFINE is comparable to PINFI (0.7x-1.8x per app, 1.2x overall).
#include <cstdio>

#include "bench/common.h"
#include "campaign/report.h"

int main() {
  using refine::campaign::CampaignResult;
  const auto campaign = refine::bench::loadOrRunFullCampaign();

  std::printf("=== Figure 5: campaign execution time normalized to PINFI ===\n");
  std::printf("%-10s %10s %10s %10s %12s %12s\n", "app", "LLFI(s)", "REFINE(s)",
              "PINFI(s)", "LLFI/PINFI", "REFINE/PINFI");
  double totalLlfi = 0;
  double totalRefine = 0;
  double totalPinfi = 0;
  for (std::size_t a = 0; a < campaign.appNames.size(); ++a) {
    const CampaignResult& llfi = campaign.results[a][0];
    const CampaignResult& refined = campaign.results[a][1];
    const CampaignResult& pinfi = campaign.results[a][2];
    totalLlfi += llfi.totalTrialSeconds;
    totalRefine += refined.totalTrialSeconds;
    totalPinfi += pinfi.totalTrialSeconds;
    std::printf("%-10s %10.2f %10.2f %10.2f %11.2fx %11.2fx\n",
                campaign.appNames[a].c_str(), llfi.totalTrialSeconds,
                refined.totalTrialSeconds, pinfi.totalTrialSeconds,
                llfi.totalTrialSeconds / pinfi.totalTrialSeconds,
                refined.totalTrialSeconds / pinfi.totalTrialSeconds);
  }
  std::printf("%-10s %10.2f %10.2f %10.2f %11.2fx %11.2fx\n", "Total",
              totalLlfi, totalRefine, totalPinfi, totalLlfi / totalPinfi,
              totalRefine / totalPinfi);
  std::printf("(paper totals: LLFI 3.9x, REFINE 1.2x of PINFI)\n");

  const double llfiRatio = totalLlfi / totalPinfi;
  const double refineRatio = totalRefine / totalPinfi;
  std::printf("%s\n",
              llfiRatio > 1.8 && refineRatio < llfiRatio / 1.5 && refineRatio < 2.5
                  ? "REPRODUCTION: shape HOLDS (LLFI slow, REFINE ~PINFI)"
                  : "REPRODUCTION: shape DEVIATES — inspect above");
  return 0;
}
