// Trial-throughput bench: the perf trajectory anchor for the execution
// pipeline (predecoded VM core + snapshot fast-forward).
//
// Runs the full (app x tool) matrix with per-trial seeds derived exactly
// like the campaign engine's — per-worker TrialScratch, streaming golden
// classification, trials sorted by target within a chunk so the delta
// restore stays small — once with snapshot fast-forward enabled (the
// production path) and once cold-started. "Cold" disables fast-forward but
// keeps the same reused-scratch/streaming hot path, so fast/cold isolates
// the snapshot-restore benefit on identical machinery (the same-run,
// same-hardware denominator the CI regression gate normalizes by); it is
// NOT the historical fresh-machine-per-trial behavior. Emits a
// machine-readable BENCH_trials.json:
//
//   * trials/sec per tool (fast-forward and cold) and their ratio,
//   * VM MIPS (instructions actually executed per wall second),
//   * mean executed-suffix fraction (how much of each trial's dynamic
//     length still runs after the snapshot restore),
//   * restored bytes per trial (the delta-restore copy cost),
//   * per-tier numbers: the fast/cold passes run with the compiled
//     execution tier engaged (vm/jit.h) and a third pass repeats the
//     fast-forward path interpreter-only, so the JSON splits trials/s and
//     VM MIPS per tier (trials_per_sec / vm_mips vs interp_trials_per_sec /
//     interp_vm_mips), reports their ratio (tier_speedup), and the fraction
//     of executed suffix instructions that ran as native code
//     (jit_coverage).
//
// Environment knobs:
//   REFINE_BENCH_TRIALS  trials per (app, tool); default 100
//   REFINE_BENCH_APPS    comma-separated app subset; default: all 14
//   REFINE_BENCH_OUT     output path; default BENCH_trials.json
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "apps/apps.h"
#include "campaign/registry.h"
#include "campaign/runner.h"
#include "campaign/scratch.h"
#include "campaign/tools.h"
#include "support/rng.h"
#include "support/strings.h"
#include "support/timer.h"

namespace {

using namespace refine;

struct CellStats {
  std::string app;
  std::string tool;
  std::uint64_t trials = 0;
  double fastSeconds = 0.0;
  double coldSeconds = 0.0;
  double interpSeconds = 0.0;  // fast-forward pass, compiled tier disabled
  std::uint64_t fastExecutedInstrs = 0;  // suffix instructions actually run
  std::uint64_t coldExecutedInstrs = 0;
  std::uint64_t interpExecutedInstrs = 0;
  std::uint64_t fastJitInstrs = 0;  // of fastExecutedInstrs, ran as native
  double suffixFractionSum = 0.0;     // sum over trials of executed/total
  std::uint64_t fastRestoredBytes = 0;  // delta-restore copy cost (fast path)

  double speedup() const {
    return fastSeconds > 0.0 ? coldSeconds / fastSeconds : 0.0;
  }
};

/// Runs `trials` single-fault experiments exactly like one engine chunk:
/// engine-identical seed derivation, target-sorted execution on a reused
/// TrialScratch with streaming golden classification. Returns wall seconds
/// and fills instruction/restore tallies.
double runTrials(const campaign::ToolInstance& instance,
                 const campaign::ToolInstance::Profile& profile,
                 std::uint64_t appKey, std::uint64_t seedKey,
                 std::uint64_t trials, std::uint64_t budget,
                 std::uint64_t& executedInstrs, double* suffixFractionSum,
                 std::uint64_t* restoredBytes,
                 std::uint64_t* jitInstrs = nullptr) {
  const std::uint64_t baseSeed = campaign::CampaignConfig{}.baseSeed;
  std::vector<campaign::TrialDraw> draws;
  campaign::drawTrialChunk(baseSeed, appKey, seedKey, profile.dynamicTargets,
                           0, trials, draws);
  campaign::TrialScratch scratch;
  scratch.setGolden(&profile.goldenOutput);
  WallTimer timer;
  for (const campaign::TrialDraw& d : draws) {
    const auto& run = instance.runTrial(d.target, d.seed, budget, scratch);
    executedInstrs += run.exec.instrCount - run.fastForwardedInstrs;
    if (suffixFractionSum != nullptr && run.exec.instrCount > 0) {
      *suffixFractionSum +=
          static_cast<double>(run.exec.instrCount - run.fastForwardedInstrs) /
          static_cast<double>(run.exec.instrCount);
    }
    if (restoredBytes != nullptr) *restoredBytes += run.restoredBytes;
    if (jitInstrs != nullptr) *jitInstrs += run.exec.jitInstrCount;
  }
  return timer.seconds();
}

std::string jsonNumber(double v) { return formatDouble(v); }

}  // namespace

int main() {
  const char* trialsEnv = std::getenv("REFINE_BENCH_TRIALS");
  const std::uint64_t trials =
      trialsEnv != nullptr && *trialsEnv != '\0'
          ? std::strtoull(trialsEnv, nullptr, 10)
          : 100;
  const char* outEnv = std::getenv("REFINE_BENCH_OUT");
  const std::string outPath =
      outEnv != nullptr && *outEnv != '\0' ? outEnv : "BENCH_trials.json";

  std::vector<apps::AppInfo> selected;
  if (const char* appsEnv = std::getenv("REFINE_BENCH_APPS");
      appsEnv != nullptr && *appsEnv != '\0') {
    for (const std::string& name : split(appsEnv, ',')) {
      if (const apps::AppInfo* app = apps::findApp(name)) {
        selected.push_back(*app);
      } else if (!name.empty()) {
        std::fprintf(stderr, "[bench] unknown app '%s' ignored\n", name.c_str());
      }
    }
  } else {
    selected = apps::benchmarkApps();
  }
  if (selected.empty()) {
    std::fprintf(stderr, "[bench] no apps selected\n");
    return 1;
  }

  const std::vector<std::string> tools = {"LLFI", "REFINE", "PINFI"};
  const double timeoutFactor = campaign::CampaignConfig{}.timeoutFactor;

  std::fprintf(stderr,
               "[bench] trial throughput: %zu apps x %zu tools x %llu trials "
               "(fast-forward vs cold start)\n",
               selected.size(), tools.size(),
               static_cast<unsigned long long>(trials));

  std::vector<CellStats> cells;
  for (const auto& app : selected) {
    for (const auto& tool : tools) {
      auto instance = campaign::InjectorRegistry::global().get(tool).create(
          app.source, fi::FiConfig::allOn());
      const auto& profile = instance->profile();
      const std::uint64_t budget = static_cast<std::uint64_t>(
          timeoutFactor * static_cast<double>(profile.instrCount));
      const std::uint64_t appKey = fnv1a(app.name);
      const std::uint64_t seedKey = campaign::injectorSeedKey(tool);

      CellStats cell;
      cell.app = app.name;
      cell.tool = tool;
      cell.trials = trials;
      // Production path: fast-forward with the compiled tier engaged
      // (silently interpreted where the host has no tier support).
      instance->setExecTier(true);
      instance->setFastForward(true);
      cell.fastSeconds = runTrials(
          *instance, profile, appKey, seedKey, trials, budget,
          cell.fastExecutedInstrs, &cell.suffixFractionSum,
          &cell.fastRestoredBytes, &cell.fastJitInstrs);
      instance->setFastForward(false);
      cell.coldSeconds =
          runTrials(*instance, profile, appKey, seedKey, trials, budget,
                    cell.coldExecutedInstrs, nullptr, nullptr);
      // Interpreter tier on the same fast-forward machinery: fast/interp
      // isolates the compiled tier exactly like fast/cold isolates the
      // snapshot restore.
      instance->setExecTier(false);
      instance->setFastForward(true);
      cell.interpSeconds =
          runTrials(*instance, profile, appKey, seedKey, trials, budget,
                    cell.interpExecutedInstrs, nullptr, nullptr);
      std::fprintf(stderr,
                   "[bench]   %-10s %-7s fast %8.1f trials/s  cold %8.1f "
                   "trials/s  interp %8.1f trials/s  speedup %5.2fx  tier "
                   "%5.2fx  jit %4.1f%%  suffix %4.1f%%  restored "
                   "%6.0f KB/trial\n",
                   cell.app.c_str(), cell.tool.c_str(),
                   trials / cell.fastSeconds, trials / cell.coldSeconds,
                   trials / cell.interpSeconds, cell.speedup(),
                   cell.interpSeconds / cell.fastSeconds,
                   cell.fastExecutedInstrs > 0
                       ? 100.0 * static_cast<double>(cell.fastJitInstrs) /
                             static_cast<double>(cell.fastExecutedInstrs)
                       : 0.0,
                   100.0 * cell.suffixFractionSum / static_cast<double>(trials),
                   static_cast<double>(cell.fastRestoredBytes) /
                       static_cast<double>(trials) / 1024.0);
      cells.push_back(std::move(cell));
    }
  }

  // Aggregate per tool and overall.
  std::string json = "{\n";
  json += "  \"trials_per_cell\": " + std::to_string(trials) + ",\n";
  json += "  \"apps\": " + std::to_string(selected.size()) + ",\n";
  json += "  \"tools\": {\n";
  for (std::size_t t = 0; t < tools.size(); ++t) {
    std::uint64_t n = 0;
    std::uint64_t executed = 0;
    std::uint64_t interpExecuted = 0;
    std::uint64_t jitInstrs = 0;
    std::uint64_t restored = 0;
    double fastSec = 0, coldSec = 0, interpSec = 0, suffixSum = 0;
    for (const auto& cell : cells) {
      if (cell.tool != tools[t]) continue;
      n += cell.trials;
      executed += cell.fastExecutedInstrs;
      interpExecuted += cell.interpExecutedInstrs;
      jitInstrs += cell.fastJitInstrs;
      restored += cell.fastRestoredBytes;
      fastSec += cell.fastSeconds;
      coldSec += cell.coldSeconds;
      interpSec += cell.interpSeconds;
      suffixSum += cell.suffixFractionSum;
    }
    json += "    \"" + tools[t] + "\": {";
    json += "\"trials_per_sec\": " + jsonNumber(n / fastSec) + ", ";
    json += "\"cold_trials_per_sec\": " + jsonNumber(n / coldSec) + ", ";
    json += "\"interp_trials_per_sec\": " + jsonNumber(n / interpSec) + ", ";
    json += "\"speedup\": " + jsonNumber(coldSec / fastSec) + ", ";
    json += "\"tier_speedup\": " + jsonNumber(interpSec / fastSec) + ", ";
    json += "\"vm_mips\": " + jsonNumber(executed / fastSec / 1e6) + ", ";
    json += "\"interp_vm_mips\": " +
            jsonNumber(interpExecuted / interpSec / 1e6) + ", ";
    json += "\"jit_coverage\": " +
            jsonNumber(executed > 0 ? static_cast<double>(jitInstrs) /
                                          static_cast<double>(executed)
                                    : 0.0) +
            ", ";
    json += "\"mean_suffix_fraction\": " +
            jsonNumber(suffixSum / static_cast<double>(n)) + ", ";
    json += "\"restored_bytes_per_trial\": " +
            jsonNumber(static_cast<double>(restored) / static_cast<double>(n)) +
            "}";
    json += t + 1 < tools.size() ? ",\n" : "\n";
  }
  json += "  },\n";

  std::vector<double> speedups;
  std::uint64_t totalTrials = 0;
  std::uint64_t totalExecuted = 0;
  std::uint64_t totalInterpExecuted = 0;
  std::uint64_t totalJit = 0;
  std::uint64_t totalRestored = 0;
  double totalFast = 0, totalCold = 0, totalInterp = 0, totalSuffix = 0;
  for (const auto& cell : cells) {
    speedups.push_back(cell.speedup());
    totalTrials += cell.trials;
    totalExecuted += cell.fastExecutedInstrs;
    totalInterpExecuted += cell.interpExecutedInstrs;
    totalJit += cell.fastJitInstrs;
    totalRestored += cell.fastRestoredBytes;
    totalFast += cell.fastSeconds;
    totalCold += cell.coldSeconds;
    totalInterp += cell.interpSeconds;
    totalSuffix += cell.suffixFractionSum;
  }
  std::sort(speedups.begin(), speedups.end());
  const double median =
      speedups.size() % 2 == 1
          ? speedups[speedups.size() / 2]
          : 0.5 * (speedups[speedups.size() / 2 - 1] +
                   speedups[speedups.size() / 2]);
  json += "  \"overall\": {";
  json += "\"trials_per_sec\": " + jsonNumber(totalTrials / totalFast) + ", ";
  json += "\"cold_trials_per_sec\": " + jsonNumber(totalTrials / totalCold) + ", ";
  json += "\"interp_trials_per_sec\": " +
          jsonNumber(totalTrials / totalInterp) + ", ";
  json += "\"speedup\": " + jsonNumber(totalCold / totalFast) + ", ";
  json += "\"tier_speedup\": " + jsonNumber(totalInterp / totalFast) + ", ";
  json += "\"median_cell_speedup\": " + jsonNumber(median) + ", ";
  json += "\"vm_mips\": " + jsonNumber(totalExecuted / totalFast / 1e6) + ", ";
  json += "\"interp_vm_mips\": " +
          jsonNumber(totalInterpExecuted / totalInterp / 1e6) + ", ";
  json += "\"jit_coverage\": " +
          jsonNumber(totalExecuted > 0 ? static_cast<double>(totalJit) /
                                             static_cast<double>(totalExecuted)
                                       : 0.0) +
          ", ";
  json += "\"mean_suffix_fraction\": " +
          jsonNumber(totalSuffix / static_cast<double>(totalTrials)) + ", ";
  json += "\"restored_bytes_per_trial\": " +
          jsonNumber(static_cast<double>(totalRestored) /
                     static_cast<double>(totalTrials)) +
          "}\n";
  json += "}\n";

  writeFile(outPath, json);
  std::printf("%s", json.c_str());
  std::fprintf(stderr, "[bench] wrote %s (median cell speedup %.2fx)\n",
               outPath.c_str(), median);
  return 0;
}
