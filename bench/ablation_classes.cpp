// Ablation over the -fi-instrs instruction classes (Table 2): how does
// restricting the fault-site class change the target population and the
// outcome distribution — and what can each technique even see?
//
// Headline: -fi-instrs=stack selects a real population for REFINE (the
// machine-only stack-management instructions of paper Listing 1) and an
// EMPTY one for LLFI, because those instructions do not exist at IR level.
#include <cstdio>

#include "apps/apps.h"
#include "campaign/engine.h"
#include "campaign/report.h"
#include "fi/llfi_pass.h"
#include "frontend/compile.h"
#include "opt/passes.h"
#include "support/strings.h"

int main() {
  using namespace refine;
  const auto& app = *apps::findApp("HPCCG-1.0");

  campaign::CampaignConfig config;
  config.trials = 400;
  if (const char* t = std::getenv("REFINE_TRIALS")) {
    config.trials = std::strtoull(t, nullptr, 10);
  }

  std::printf("=== -fi-instrs ablation on %s (%llu trials per class) ===\n\n",
              app.name.c_str(),
              static_cast<unsigned long long>(config.trials));
  std::printf("%-7s %14s %16s | %7s %7s %7s\n", "class", "static sites",
              "dynamic targets", "crash%", "soc%", "benign%");

  // One engine: the four class campaigns share its pool back to back.
  campaign::CampaignEngine engine(config);
  const auto& refineFactory = campaign::InjectorRegistry::global().get("REFINE");
  for (const char* cls : {"all", "arithm", "mem", "stack"}) {
    const auto fiConfig =
        fi::FiConfig::parseFlags(strf("-fi=true -fi-instrs=%s", cls));
    auto instance = refineFactory.create(app.source, fiConfig);
    const auto& profile = instance->profile();
    const auto result = engine.run(*instance, "REFINE", app.name);
    const double n = static_cast<double>(result.counts.total());
    std::printf("%-7s %14s %16llu | %6.1f%% %6.1f%% %6.1f%%\n", cls, "-",
                static_cast<unsigned long long>(profile.dynamicTargets),
                100.0 * static_cast<double>(result.counts.crash) / n,
                100.0 * static_cast<double>(result.counts.soc) / n,
                100.0 * static_cast<double>(result.counts.benign) / n);
  }

  std::printf("\n--- what LLFI can target per class (static IR sites) ---\n");
  for (const char* cls : {"all", "arithm", "mem", "stack"}) {
    auto module = fe::compileToIR(app.source);
    opt::optimize(*module, opt::OptLevel::O2);
    const auto fiConfig =
        fi::FiConfig::parseFlags(strf("-fi=true -fi-instrs=%s", cls));
    const auto info = fi::applyLlfiPass(*module, fiConfig);
    std::printf("%-7s %14llu%s\n", cls,
                static_cast<unsigned long long>(info.staticTargets),
                info.staticTargets == 0
                    ? "   <- invisible at IR level (paper Listing 1)"
                    : "");
  }
  return 0;
}
