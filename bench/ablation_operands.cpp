// Extension ablation: outcome distribution by *fault location* — which
// output operand kind the bit flip landed in (general register, FP register,
// condition flags, stack pointer).
//
// This decomposes WHY IR-level injection is skewed: LLFI can only ever flip
// SSA data values (the gpr/fpr rows), while a large share of the machine
// population — flags and stack-pointer outputs with very different failure
// physics — is invisible to it.
#include <cstdio>
#include <cstdlib>

#include "apps/apps.h"
#include "campaign/outcome.h"
#include "campaign/registry.h"
#include "support/rng.h"
#include "support/threadpool.h"

int main(int argc, char** argv) {
  using namespace refine;
  const char* appName = argc > 1 ? argv[1] : "HPCCG-1.0";
  const auto* app = apps::findApp(appName);
  if (app == nullptr) {
    std::fprintf(stderr, "unknown app '%s'\n", appName);
    return 2;
  }
  std::uint64_t trials = 2000;
  if (const char* t = std::getenv("REFINE_TRIALS")) {
    trials = std::strtoull(t, nullptr, 10) * 2;
  }

  auto instance = campaign::InjectorRegistry::global().get("REFINE").create(
      app->source, fi::FiConfig::allOn());
  const auto& profile = instance->profile();
  const std::uint64_t budget = profile.instrCount * 10;

  struct KindStats {
    std::uint64_t crash = 0;
    std::uint64_t soc = 0;
    std::uint64_t benign = 0;
  };
  constexpr int kKinds = 4;  // gpr, fpr, sp, flags
  std::vector<int> kindOf(trials, -1);
  std::vector<campaign::Outcome> outcomes(trials, campaign::Outcome::Benign);

  parallelFor(trials, hardwareThreads(), [&](std::size_t trial) {
    const std::uint64_t seed = mixSeed(0xAB1A7E, fnv1a(app->name), trial);
    Rng rng(seed);
    const std::uint64_t target = rng.nextBelow(profile.dynamicTargets) + 1;
    const auto run = instance->runTrial(target, rng.next(), budget);
    if (run.fault.has_value()) {
      kindOf[trial] = static_cast<int>(run.fault->operandKind);
      outcomes[trial] = campaign::classify(run.exec, profile.goldenOutput);
    }
  });

  KindStats stats[kKinds];
  std::uint64_t population[kKinds] = {};
  for (std::size_t t = 0; t < trials; ++t) {
    if (kindOf[t] < 0) continue;
    ++population[kindOf[t]];
    auto& s = stats[kindOf[t]];
    switch (outcomes[t]) {
      case campaign::Outcome::Crash: ++s.crash; break;
      case campaign::Outcome::SOC: ++s.soc; break;
      case campaign::Outcome::Benign: ++s.benign; break;
    }
  }

  std::printf("=== outcome by flipped operand kind: %s, REFINE, %llu trials ===\n",
              app->name.c_str(), static_cast<unsigned long long>(trials));
  std::printf("%-7s %8s %8s %8s %8s   %s\n", "kind", "share", "crash%", "soc%",
              "benign%", "visible to LLFI?");
  const char* names[kKinds] = {"gpr", "fpr", "sp", "flags"};
  const char* visible[kKinds] = {"yes (as i64 values)", "yes (as f64 values)",
                                 "NO — no sp at IR level",
                                 "NO — no flags at IR level"};
  for (int k = 0; k < kKinds; ++k) {
    const auto& s = stats[k];
    const double n = static_cast<double>(s.crash + s.soc + s.benign);
    if (n == 0) continue;
    std::printf("%-7s %7.1f%% %7.1f%% %7.1f%% %7.1f%%   %s\n", names[k],
                100.0 * static_cast<double>(population[k]) /
                    static_cast<double>(trials),
                100.0 * static_cast<double>(s.crash) / n,
                100.0 * static_cast<double>(s.soc) / n,
                100.0 * static_cast<double>(s.benign) / n, visible[k]);
  }
  return 0;
}
