#!/usr/bin/env python3
"""Trial-throughput regression gate: BENCH_trials.json vs the committed
bench/baseline_trials.json.

Absolute trials/s depends on the host (the committed baseline was recorded
on a developer box; CI runners differ), so the HARD gate runs on the
hardware-normalized throughput ratio

    normalized = trials_per_sec / cold_trials_per_sec

i.e. the fast path measured against a cold-start reference from the very
same run on the very same machine. A >threshold drop of that ratio (per
tool or overall) means the fast path itself regressed — machine speed
cancels out. Absolute trials/s deltas are always printed for the record and
can be promoted to a hard gate with REFINE_BENCH_GATE_ABSOLUTE=1 when the
current host matches the baseline host.

Exit code 0 = pass, 1 = regression, 2 = usage/inputs broken.

Usage: check_trials_regression.py CURRENT.json BASELINE.json [--max-regression 0.25]
"""

import json
import os
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def normalized(entry):
    cold = entry.get("cold_trials_per_sec", 0.0)
    fast = entry.get("trials_per_sec", 0.0)
    return fast / cold if cold > 0 else 0.0


def main(argv):
    args = []
    threshold = 0.25
    i = 1
    while i < len(argv):
        if argv[i] == "--max-regression":
            threshold = float(argv[i + 1])
            i += 2
        else:
            args.append(argv[i])
            i += 1
    if len(args) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    current, baseline = load(args[0]), load(args[1])
    gate_absolute = os.environ.get("REFINE_BENCH_GATE_ABSOLUTE") == "1"

    failures = []
    rows = []
    keys = ["overall"] + sorted(baseline.get("tools", {}).keys())
    for key in keys:
        base = baseline["tools"].get(key) if key != "overall" else baseline.get("overall")
        cur = current["tools"].get(key) if key != "overall" else current.get("overall")
        if base is None or cur is None:
            failures.append(f"{key}: missing from current or baseline JSON")
            continue
        base_norm, cur_norm = normalized(base), normalized(cur)
        norm_delta = cur_norm / base_norm - 1.0 if base_norm > 0 else 0.0
        abs_delta = (
            cur["trials_per_sec"] / base["trials_per_sec"] - 1.0
            if base.get("trials_per_sec", 0) > 0
            else 0.0
        )
        rows.append(
            f"  {key:8s} normalized {base_norm:6.2f} -> {cur_norm:6.2f} "
            f"({norm_delta:+7.1%})   absolute {base['trials_per_sec']:8.1f} -> "
            f"{cur['trials_per_sec']:8.1f} trials/s ({abs_delta:+7.1%})"
        )
        if norm_delta < -threshold:
            failures.append(
                f"{key}: normalized throughput regressed {norm_delta:.1%} "
                f"(limit -{threshold:.0%})"
            )
        if gate_absolute and abs_delta < -threshold:
            failures.append(
                f"{key}: absolute trials/s regressed {abs_delta:.1%} "
                f"(limit -{threshold:.0%}, REFINE_BENCH_GATE_ABSOLUTE=1)"
            )

    print(f"trial-throughput gate (max regression {threshold:.0%}, "
          f"absolute gate {'ON' if gate_absolute else 'record-only'}):")
    for row in rows:
        print(row)
    if failures:
        print("\nFAIL:")
        for f in failures:
            print(f"  {f}")
        return 1
    print("\nPASS")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
