// Run a complete statistically sized fault-injection campaign on one of the
// paper's benchmarks (default: HPCCG) with the REFINE injector.
//
// Demonstrates the campaign machinery end to end: Leveugle sample sizing,
// parallel trial execution, outcome percentages with confidence intervals,
// and (when a checkpoint path is given) crash-safe persistence — rerun the
// same command after an interruption and the completed cell is loaded
// instead of recomputed.
//
// Usage: fi_campaign [app-name] [trials] [checkpoint-file]
#include <cstdio>
#include <cstdlib>
#include <optional>

#include "apps/apps.h"
#include "campaign/engine.h"
#include "campaign/persist.h"
#include "campaign/report.h"
#include "stats/samplesize.h"

int main(int argc, char** argv) {
  using namespace refine;

  const char* appName = argc > 1 ? argv[1] : "HPCCG-1.0";
  const apps::AppInfo* app = apps::findApp(appName);
  if (app == nullptr) {
    std::fprintf(stderr, "unknown app '%s'; available:\n", appName);
    for (const auto& a : apps::benchmarkApps()) {
      std::fprintf(stderr, "  %s\n", a.name.c_str());
    }
    return 2;
  }

  // A checkpointed run with an explicit trial count never needs the
  // compile+profile below: a completed cell resumes straight from the
  // store, and a fresh one compiles inside the engine.
  std::optional<campaign::CheckpointStore> store;
  if (argc > 3) store.emplace(argv[3]);
  const bool resumable =
      store && argc > 2 && store->contains(app->name, "REFINE");

  campaign::CampaignConfig config;
  if (argc > 2) {
    config.trials = std::strtoull(argv[2], nullptr, 10);
  }
  std::unique_ptr<campaign::ToolInstance> instance;
  if (!resumable) {
    instance = campaign::InjectorRegistry::global().get("REFINE").create(
        app->source, fi::FiConfig::allOn());
    const auto& profile = instance->profile();

    // Sample size per Leveugle et al.: population = all (instruction, bit)
    // faults; with a population this large the answer is the paper's 1068.
    const std::uint64_t population = profile.dynamicTargets * 64;
    const std::uint64_t recommended =
        stats::leveugleSampleSize(population, 0.03, 0.95);
    std::printf("%s: %llu dynamic targets (population ~%llu) -> %llu trials "
                "for <=3%% error at 95%% confidence\n",
                app->name.c_str(),
                static_cast<unsigned long long>(profile.dynamicTargets),
                static_cast<unsigned long long>(population),
                static_cast<unsigned long long>(recommended));
    if (argc <= 2) config.trials = recommended;
  }

  campaign::CampaignEngine engine(config);
  campaign::CampaignResult result;
  if (store) {
    // Checkpointed variant: the cell goes through runMatrix so a completed
    // record in the store is returned without re-running any trial.
    const bool resumed = store->contains(app->name, "REFINE");
    campaign::MatrixOptions options;
    options.checkpoint = &*store;
    const std::vector<campaign::MatrixJob> jobs = {
        {app->name, "REFINE", app->source, fi::FiConfig::allOn()}};
    result = engine.runMatrix(jobs, options).at(0);
    std::printf("%s %s\n",
                resumed ? "loaded completed campaign from" : "checkpointed to",
                argv[3]);
  } else {
    result = engine.run(*instance, "REFINE", app->name);
  }

  std::printf("\n%s\n", campaign::figure4Row(result).c_str());
  std::printf("raw counts: crash=%llu soc=%llu benign=%llu (total %llu)\n",
              static_cast<unsigned long long>(result.counts.crash),
              static_cast<unsigned long long>(result.counts.soc),
              static_cast<unsigned long long>(result.counts.benign),
              static_cast<unsigned long long>(result.counts.total()));
  std::printf("campaign work: %.2f s (sequential-equivalent)\n",
              result.totalTrialSeconds);
  return 0;
}
