// Demonstrates the Table 2 compiler-flag interface: steering REFINE at
// particular source functions (-fi-funcs, a strength of compiler-based FI —
// binary-level tools lose these source abstractions) and at particular
// instruction classes (-fi-instrs).
#include <cstdio>

#include "apps/apps.h"
#include "campaign/runner.h"
#include "campaign/tools.h"
#include "fi/llfi_pass.h"
#include "fi/refine_pass.h"
#include "frontend/compile.h"
#include "opt/passes.h"
#include "support/strings.h"

int main() {
  using namespace refine;
  const auto& app = *apps::findApp("HPCCG-1.0");

  std::printf("=== -fi-funcs: target selected source functions ===\n");
  for (const char* funcs : {"*", "compute_residual", "sparsemv,ddot_*", "main"}) {
    auto module = fe::compileToIR(app.source);
    opt::optimize(*module, opt::OptLevel::O2);
    const auto config =
        fi::FiConfig::parseFlags(strf("-fi=true -fi-funcs=%s", funcs));
    const auto compiled = fi::compileWithRefine(*module, config);
    // Count sites per function for the report.
    std::printf("  -fi-funcs=%-22s -> %4llu static sites", funcs,
                static_cast<unsigned long long>(compiled.staticSites));
    if (compiled.staticSites > 0) {
      std::printf(" (first site in @%s)",
                  compiled.sites.site(0).function.c_str());
    }
    std::printf("\n");
  }

  std::printf("\n=== -fi-instrs: target instruction classes ===\n");
  std::printf("  %-8s %10s %12s\n", "class", "REFINE", "LLFI(IR)");
  for (const char* cls : {"all", "arithm", "mem", "stack"}) {
    auto module = fe::compileToIR(app.source);
    opt::optimize(*module, opt::OptLevel::O2);
    const auto config =
        fi::FiConfig::parseFlags(strf("-fi=true -fi-instrs=%s", cls));
    const auto refined = fi::compileWithRefine(*module, config);

    auto module2 = fe::compileToIR(app.source);
    opt::optimize(*module2, opt::OptLevel::O2);
    std::uint64_t llfiSites = 0;
    try {
      llfiSites = fi::applyLlfiPass(*module2, config).staticTargets;
    } catch (const std::exception&) {
      llfiSites = 0;
    }
    std::printf("  %-8s %10llu %12llu%s\n", cls,
                static_cast<unsigned long long>(refined.staticSites),
                static_cast<unsigned long long>(llfiSites),
                llfiSites == 0 && refined.staticSites > 0
                    ? "  <- machine-only instructions, invisible at IR level"
                    : "");
  }

  std::printf("\n=== stack-class faults behave differently ===\n");
  for (const char* cls : {"arithm", "stack"}) {
    const auto config =
        fi::FiConfig::parseFlags(strf("-fi=true -fi-instrs=%s", cls));
    auto instance =
        campaign::makeToolInstance(campaign::Tool::REFINE, app.source, config);
    campaign::CampaignConfig cc;
    cc.trials = 300;
    const auto result = campaign::runCampaign(*instance, campaign::Tool::REFINE,
                                              app.name, cc);
    const double n = static_cast<double>(result.counts.total());
    std::printf("  %-8s crash %5.1f%%  soc %5.1f%%  benign %5.1f%%\n", cls,
                100.0 * static_cast<double>(result.counts.crash) / n,
                100.0 * static_cast<double>(result.counts.soc) / n,
                100.0 * static_cast<double>(result.counts.benign) / n);
  }
  return 0;
}
