// Reproduces the paper's Listing 1 and Listing 2 qualitatively:
//
//  Listing 1 — machine instructions that do not exist at IR level: compare
//  the IR of a function against its final VT64 assembly (prologue/epilogue
//  pushes, stack adjustment, sp-relative spill traffic).
//
//  Listing 2 — code-generation interference: the same function compiled
//  (a) clean and (b) with LLFI-style IR instrumentation. The instrumented
//  build loses the FMAX fusion and gains call/spill traffic, i.e. the binary
//  under test is no longer the binary being emulated. REFINE's backend
//  instrumentation leaves the application instructions untouched.
#include <cstdio>

#include "apps/apps.h"
#include "backend/compile.h"
#include "fi/llfi_pass.h"
#include "fi/refine_pass.h"
#include "frontend/compile.h"
#include "ir/printer.h"
#include "opt/passes.h"

namespace {

using namespace refine;

void printFunctionAsm(const backend::MachineModule& mm, const char* name,
                      bool onlyAppInstrs = false) {
  const backend::MachineFunction* fn = mm.findFunction(name);
  if (fn == nullptr) {
    std::printf("  <function %s not found>\n", name);
    return;
  }
  for (const auto& bb : fn->blocks()) {
    bool anyShown = false;
    for (const auto& inst : bb->insts()) {
      if (onlyAppInstrs && inst.isFIInstrumentation()) continue;
      anyShown = true;
    }
    if (!anyShown) continue;  // cold FI blocks, fully filtered
    std::printf(".%s:\n", bb->name().c_str());
    for (const auto& inst : bb->insts()) {
      if (onlyAppInstrs && inst.isFIInstrumentation()) continue;
      std::printf("  %s\n", backend::printInst(inst).c_str());
    }
  }
}

int countOp(const backend::MachineModule& mm, const char* fnName,
            backend::MOp op) {
  const auto* fn = mm.findFunction(fnName);
  int n = 0;
  for (const auto& bb : fn->blocks()) {
    for (const auto& inst : bb->insts()) {
      if (inst.op() == op) ++n;
    }
  }
  return n;
}

}  // namespace

int main() {
  const auto& app = *apps::findApp("HPCCG-1.0");
  const char* kFn = "compute_residual";

  // ---- Listing 1: IR vs final machine code -------------------------------
  auto module = fe::compileToIR(app.source);
  opt::optimize(*module, opt::OptLevel::O2);
  std::printf("=== Listing 1a: %s in optimized IR ===\n%s\n", kFn,
              ir::printFunction(*module->findFunction(kFn)).c_str());

  auto clean = backend::compileBackend(*module);
  std::printf("=== Listing 1b: %s in final VT64 assembly ===\n", kFn);
  printFunctionAsm(*clean.machineModule, kFn);
  std::printf("\nNote the prologue/epilogue pushes, spadj and sp-relative\n"
              "accesses: none of these instructions exist at IR level, yet\n"
              "all are legitimate soft-error targets.\n\n");

  // ---- Listing 2: LLFI instrumentation degrades codegen ------------------
  auto llfiModule = fe::compileToIR(app.source);
  opt::optimize(*llfiModule, opt::OptLevel::O2);
  fi::applyLlfiPass(*llfiModule, fi::FiConfig::allOn());
  auto llfi = backend::compileBackend(*llfiModule);

  std::printf("=== Listing 2: %s with LLFI IR instrumentation ===\n", kFn);
  printFunctionAsm(*llfi.machineModule, kFn);

  const int cleanFmax = countOp(*clean.machineModule, kFn, backend::MOp::FMAX);
  const int llfiFmax = countOp(*llfi.machineModule, kFn, backend::MOp::FMAX);
  const int cleanCalls = countOp(*clean.machineModule, kFn, backend::MOp::CALL);
  const int llfiCalls = countOp(*llfi.machineModule, kFn, backend::MOp::CALL);
  auto sizeOf = [](const backend::MachineModule& mm, const char* name) {
    std::size_t n = 0;
    for (const auto& bb : mm.findFunction(name)->blocks()) n += bb->insts().size();
    return n;
  };
  std::printf("\nclean:  %zu instrs, %d FMAX, %d calls\n",
              sizeOf(*clean.machineModule, kFn), cleanFmax, cleanCalls);
  std::printf("LLFI:   %zu instrs, %d FMAX, %d calls  <- fusion lost, call "
              "traffic added\n",
              sizeOf(*llfi.machineModule, kFn), llfiFmax, llfiCalls);

  // ---- REFINE: application instructions untouched -------------------------
  auto refineModule = fe::compileToIR(app.source);
  opt::optimize(*refineModule, opt::OptLevel::O2);
  backend::MachineModule* instrumented = nullptr;
  auto refined = backend::compileBackend(
      *refineModule, [&](backend::MachineModule& mm) {
        fi::applyRefinePass(mm, fi::FiConfig::allOn());
        instrumented = &mm;
      });
  std::printf("\n=== REFINE: %s application instructions (instrumentation "
              "filtered out) ===\n", kFn);
  printFunctionAsm(*refined.machineModule, kFn, /*onlyAppInstrs=*/true);
  std::printf("\nREFINE keeps the FMAX fusion (%d) and adds no calls to the\n"
              "application code: injection happens via FICHECK fast paths and\n"
              "cold PreFI/SetupFI/FI/PostFI blocks appended per Fig. 2.\n",
              countOp(*refined.machineModule, kFn, backend::MOp::FMAX));
  return 0;
}
