// Quickstart: compile a small program with REFINE instrumentation, profile
// it, inject a handful of single-bit faults and classify each outcome.
//
// This walks the exact user-level workflow of the paper's Fig. 3:
//   1. compile with -fi=true (backend instrumentation),
//   2. profiling run -> golden output + dynamic target count,
//   3. injection runs -> crash / silent output corruption / benign.
#include <cstdio>

#include "campaign/outcome.h"
#include "fi/library.h"
#include "fi/refine_pass.h"
#include "frontend/compile.h"
#include "opt/passes.h"
#include "vm/machine.h"

int main() {
  using namespace refine;

  const char* source = R"(
var data: f64[32];
fn main() -> i64 {
  for (var i: i64 = 0; i < 32; i = i + 1) {
    data[i] = sin(f64(i) * 0.5) + 1.0;
  }
  var sum: f64 = 0.0;
  for (var i: i64 = 0; i < 32; i = i + 1) { sum = sum + data[i] * data[i]; }
  print_f64(sqrt(sum));
  return 0;
}
)";

  // 1. Compile: frontend -> -O2 optimizer -> backend with the REFINE pass
  //    (the paper's flags: -fi=true -fi-funcs=* -fi-instrs=all).
  auto module = fe::compileToIR(source);
  opt::optimize(*module, opt::OptLevel::O2);
  const auto config = fi::FiConfig::parseFlags(
      "-fi=true -fi-funcs=* -fi-instrs=all");
  const auto compiled = fi::compileWithRefine(*module, config);
  std::printf("compiled: %zu machine instructions, %llu static FI sites\n",
              compiled.program.code.size(),
              static_cast<unsigned long long>(compiled.staticSites));

  // 2. Profiling run (Fig. 3a): count dynamic targets, keep golden output.
  auto profiler = fi::FaultInjectionLibrary::profiling(&compiled.sites);
  vm::Machine profileMachine(compiled.program);
  profileMachine.setFiRuntime(&profiler);
  const auto golden = profileMachine.run();
  std::printf("profile: %llu dynamic targets, %llu instructions, golden "
              "output:\n%s",
              static_cast<unsigned long long>(profiler.dynamicCount()),
              static_cast<unsigned long long>(golden.instrCount),
              golden.output.c_str());

  // 3. Injection runs (Fig. 3b): one bit flip each, classified against the
  //    golden output.
  const std::uint64_t budget = golden.instrCount * 10;  // 10x timeout
  for (std::uint64_t trial = 0; trial < 8; ++trial) {
    Rng rng(mixSeed(0xC0FFEE, trial));
    const std::uint64_t target = rng.nextBelow(profiler.dynamicCount()) + 1;
    auto library =
        fi::FaultInjectionLibrary::injecting(&compiled.sites, target, rng.next());
    vm::Machine machine(compiled.program);
    machine.setFiRuntime(&library);
    const auto result = machine.run(budget);
    const auto outcome = campaign::classify(result, golden.output);
    std::printf("trial %llu: %-6s  %s\n",
                static_cast<unsigned long long>(trial),
                campaign::outcomeName(outcome),
                library.fault() ? fi::formatFaultRecord(*library.fault()).c_str()
                                : "(fault did not trigger)");
  }
  return 0;
}
