// Compare the three fault injectors on one application, the way the paper's
// evaluation does: same fault model, same classification, chi-squared test
// of each tool against the PINFI baseline.
//
// The whole (1 app x 3 tools) matrix runs through one CampaignEngine pool,
// and the comparison finishes with the registry's REFINE-STACK scenario — an
// injector that exists only as an InjectorRegistration, demonstrating that
// new tools need no enum or engine edits.
//
// Usage: tool_comparison [app-name] [trials]
#include <cstdio>
#include <cstdlib>

#include "apps/apps.h"
#include "campaign/engine.h"
#include "campaign/report.h"

int main(int argc, char** argv) {
  using namespace refine;

  const char* appName = argc > 1 ? argv[1] : "CoMD";
  const apps::AppInfo* app = apps::findApp(appName);
  if (app == nullptr) {
    std::fprintf(stderr, "unknown app '%s'\n", appName);
    return 2;
  }
  campaign::CampaignConfig config;
  config.trials = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1068;

  std::printf("registered injectors:");
  for (const auto& name : campaign::InjectorRegistry::global().names()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n\ncomparing LLFI / REFINE / PINFI on %s (%llu trials each)\n\n",
              app->name.c_str(),
              static_cast<unsigned long long>(config.trials));

  campaign::CampaignEngine engine(config);
  std::vector<campaign::MatrixJob> jobs;
  for (const char* tool : {"LLFI", "REFINE", "PINFI"}) {
    jobs.push_back({app->name, tool, app->source, fi::FiConfig::allOn()});
  }
  const auto results = engine.runMatrix(jobs);

  for (const auto& r : results) {
    std::printf("%-7s population: %llu dynamic targets, binary %llu instrs\n",
                r.tool.c_str(),
                static_cast<unsigned long long>(r.dynamicTargets),
                static_cast<unsigned long long>(r.binarySize));
  }

  std::printf("\n");
  for (const auto& r : results) {
    std::printf("%s\n", campaign::figure4Row(r).c_str());
  }

  std::printf("\ncontingency (LLFI vs PINFI):\n%s",
              campaign::contingencyTable(results[0], results[2]).c_str());
  std::printf("\n%s\n", campaign::table5Line(results[0], results[2]).c_str());
  std::printf("%s\n", campaign::table5Line(results[1], results[2]).c_str());

  std::printf("\nspeed:\n%s\n%s\n",
              campaign::figure5Line(results[0], results[2]).c_str(),
              campaign::figure5Line(results[1], results[2]).c_str());

  // Scenario injector, added via registry registration only: REFINE
  // restricted to the machine-only stack-management instruction class.
  auto stack = campaign::InjectorRegistry::global()
                   .get("REFINE-STACK")
                   .create(app->source, fi::FiConfig::allOn());
  const auto stackResult = engine.run(*stack, "REFINE-STACK", app->name);
  std::printf("\nscenario (registry-only injector):\n%s\n",
              campaign::figure4Row(stackResult).c_str());
  std::printf("REFINE-STACK population: %llu dynamic targets "
              "(%.1f%% of REFINE's %llu — instructions invisible at IR level)\n",
              static_cast<unsigned long long>(stackResult.dynamicTargets),
              100.0 * static_cast<double>(stackResult.dynamicTargets) /
                  static_cast<double>(results[1].dynamicTargets),
              static_cast<unsigned long long>(results[1].dynamicTargets));
  return 0;
}
