// Compare the three fault injectors on one application, the way the paper's
// evaluation does: same fault model, same classification, chi-squared test
// of each tool against the PINFI baseline.
//
// Usage: tool_comparison [app-name] [trials]
#include <cstdio>
#include <cstdlib>

#include "apps/apps.h"
#include "campaign/report.h"
#include "campaign/runner.h"

int main(int argc, char** argv) {
  using namespace refine;

  const char* appName = argc > 1 ? argv[1] : "CoMD";
  const apps::AppInfo* app = apps::findApp(appName);
  if (app == nullptr) {
    std::fprintf(stderr, "unknown app '%s'\n", appName);
    return 2;
  }
  campaign::CampaignConfig config;
  config.trials = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1068;

  std::printf("comparing LLFI / REFINE / PINFI on %s (%llu trials each)\n\n",
              app->name.c_str(),
              static_cast<unsigned long long>(config.trials));

  std::vector<campaign::CampaignResult> results;
  for (const auto tool : {campaign::Tool::LLFI, campaign::Tool::REFINE,
                          campaign::Tool::PINFI}) {
    auto instance =
        campaign::makeToolInstance(tool, app->source, fi::FiConfig::allOn());
    std::printf("%-7s population: %llu dynamic targets, binary %llu instrs\n",
                campaign::toolName(tool),
                static_cast<unsigned long long>(instance->profile().dynamicTargets),
                static_cast<unsigned long long>(instance->binarySize()));
    results.push_back(
        campaign::runCampaign(*instance, tool, app->name, config));
  }

  std::printf("\n");
  for (const auto& r : results) {
    std::printf("%s\n", campaign::figure4Row(r).c_str());
  }

  std::printf("\ncontingency (LLFI vs PINFI):\n%s",
              campaign::contingencyTable(results[0], results[2]).c_str());
  std::printf("\n%s\n", campaign::table5Line(results[0], results[2]).c_str());
  std::printf("%s\n", campaign::table5Line(results[1], results[2]).c_str());

  std::printf("\nspeed:\n%s\n%s\n",
              campaign::figure5Line(results[0], results[2]).c_str(),
              campaign::figure5Line(results[1], results[2]).c_str());
  return 0;
}
